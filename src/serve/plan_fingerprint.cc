#include "serve/plan_fingerprint.h"

#include <cstring>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace prestroid::serve {

namespace {

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashByte(uint64_t& h, uint8_t byte) {
  h ^= byte;
  h *= kFnvPrime;
}

void HashString(uint64_t& h, const std::string& s) {
  // Length-prefix so "ab"+"c" and "a"+"bc" cannot collide across fields.
  for (size_t len = s.size(); len != 0; len >>= 8) {
    HashByte(h, static_cast<uint8_t>(len & 0xff));
  }
  HashByte(h, 0xfe);
  for (char c : s) HashByte(h, static_cast<uint8_t>(c));
}

/// One pending unit of hashing work. The fingerprint runs on whatever plan
/// the front end admits — potentially a 100k+-deep chain — so the traversal
/// keeps its own heap stack instead of recursing. Delimiter bytes are queued
/// as tasks so the emitted byte stream is identical to the old recursive
/// form (fingerprints are cache keys; they must not change).
struct HashTask {
  enum class Kind : uint8_t { kNode, kExpr, kByte };
  Kind kind;
  const void* ptr = nullptr;  // PlanNode* or Expr*, per kind
  uint8_t byte = 0;
};

/// Hashes `expr`'s own payload (kind byte + per-kind fields), excluding
/// children and delimiters.
void HashExprPayload(uint64_t& h, const sql::Expr& expr) {
  HashByte(h, static_cast<uint8_t>(expr.kind));
  switch (expr.kind) {
    case sql::ExprKind::kColumn:
      HashString(h, expr.table);
      HashString(h, expr.name);
      break;
    case sql::ExprKind::kNumberLit: {
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(expr.number),
                    "double must be 64-bit");
      std::memcpy(&bits, &expr.number, sizeof(bits));
      for (int i = 0; i < 8; ++i) {
        HashByte(h, static_cast<uint8_t>(bits >> (8 * i)));
      }
      break;
    }
    case sql::ExprKind::kStringLit:
      HashString(h, expr.str);
      break;
    case sql::ExprKind::kBinary:
    case sql::ExprKind::kCompare:
      HashString(h, expr.op);
      break;
    case sql::ExprKind::kIsNull:
      // The negation marker lives in `name`/`op` depending on the factory;
      // hash both so negated and plain IS NULL never collide.
      HashString(h, expr.name);
      HashString(h, expr.op);
      break;
    case sql::ExprKind::kFuncCall:
      HashString(h, expr.name);
      break;
    default:
      // kNullLit/kStar/kAnd/kOr/kNot/kIn/kBetween/kLike carry no payload
      // beyond their kind and children.
      break;
  }
}

}  // namespace

uint64_t FingerprintPlan(const plan::PlanNode& plan) {
  // Structurally hashes the plan (and, per recast rule R1, the expression
  // trees of unary-operator predicates): equal structure implies equal
  // serialized text, so this keys at least as finely as the predicate text
  // the recast consumes; it never falsely shares.
  uint64_t h = kFnvOffsetBasis;
  std::vector<HashTask> stack;
  stack.push_back({HashTask::Kind::kNode, &plan, 0});
  // Tasks are pushed in reverse emission order (a pop emits next).
  while (!stack.empty()) {
    HashTask task = stack.back();
    stack.pop_back();
    switch (task.kind) {
      case HashTask::Kind::kByte:
        HashByte(h, task.byte);
        break;
      case HashTask::Kind::kExpr: {
        const auto& expr = *static_cast<const sql::Expr*>(task.ptr);
        HashExprPayload(h, expr);
        // Emit: 0xf4, (child, 0xf5)..., 0xf6.
        stack.push_back({HashTask::Kind::kByte, nullptr, 0xf6});
        for (size_t i = expr.children.size(); i > 0; --i) {
          stack.push_back({HashTask::Kind::kByte, nullptr, 0xf5});
          stack.push_back(
              {HashTask::Kind::kExpr, expr.children[i - 1].get(), 0});
        }
        stack.push_back({HashTask::Kind::kByte, nullptr, 0xf4});
        break;
      }
      case HashTask::Kind::kNode: {
        const auto& node = *static_cast<const plan::PlanNode*>(task.ptr);
        HashByte(h, static_cast<uint8_t>(node.type));
        bool hash_predicate = false;
        switch (node.type) {
          case plan::PlanNodeType::kTableScan:
            HashString(h, node.table);
            break;
          case plan::PlanNodeType::kJoin:
            // Recast rule R2 keeps only the flavour; the condition is
            // dropped.
            HashByte(h, static_cast<uint8_t>(node.join_type));
            break;
          case plan::PlanNodeType::kExchange:
            HashByte(h, static_cast<uint8_t>(node.exchange_kind));
            break;
          default:
            // Recast rule R1: a non-join unary operator contributes its
            // predicate (or the null marker) and nothing else.
            if (node.predicate != nullptr) {
              hash_predicate = true;
            } else {
              HashByte(h, 0xf0);
            }
            break;
        }
        // Emit: [predicate expr], 0xf1, (child, 0xf2)..., 0xf3 — the child
        // delimiters make tree shape part of the fingerprint.
        stack.push_back({HashTask::Kind::kByte, nullptr, 0xf3});
        for (size_t i = node.children.size(); i > 0; --i) {
          stack.push_back({HashTask::Kind::kByte, nullptr, 0xf2});
          stack.push_back(
              {HashTask::Kind::kNode, node.children[i - 1].get(), 0});
        }
        stack.push_back({HashTask::Kind::kByte, nullptr, 0xf1});
        if (hash_predicate) {
          stack.push_back({HashTask::Kind::kExpr, node.predicate.get(), 0});
        }
        break;
      }
    }
  }
  return h;
}

uint64_t CombineFingerprint(uint64_t fingerprint, uint64_t generation) {
  uint64_t h = kFnvOffsetBasis;
  for (int i = 0; i < 8; ++i) {
    HashByte(h, static_cast<uint8_t>(fingerprint >> (8 * i)));
  }
  for (int i = 0; i < 8; ++i) {
    HashByte(h, static_cast<uint8_t>(generation >> (8 * i)));
  }
  return h;
}

}  // namespace prestroid::serve
