#include "serve/ingest_fuzz.h"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "otp/otp_tree.h"
#include "plan/plan_stats.h"
#include "plan/plan_text.h"
#include "serve/plan_fingerprint.h"
#include "sql/parser.h"
#include "util/random.h"

namespace prestroid::serve {

namespace {

using plan::MakeAggregate;
using plan::MakeDistinct;
using plan::MakeExchange;
using plan::MakeFilter;
using plan::MakeJoin;
using plan::MakeLimit;
using plan::MakeProject;
using plan::MakeSort;
using plan::MakeTableScan;
using plan::PlanNodePtr;

const char* const kTables[] = {"orders", "lineitem", "customer", "part",
                               "supplier", "nation"};
const char* const kColumns[] = {"price", "qty", "discount", "region_id",
                                "ship_date", "status"};

std::string PickTable(Rng& rng) {
  return kTables[rng.NextUint64(std::size(kTables))];
}

std::string PickColumn(Rng& rng) {
  return kColumns[rng.NextUint64(std::size(kColumns))];
}

/// Builds a small predicate text and parses it into an ExprPtr. Base-corpus
/// predicates are always valid — mutation is what makes inputs hostile.
sql::ExprPtr MakePredicate(Rng& rng) {
  std::string text;
  switch (rng.NextUint64(4)) {
    case 0:
      text = PickColumn(rng) + " > " + std::to_string(rng.UniformInt(0, 1000));
      break;
    case 1:
      text = "(" + PickColumn(rng) + " >= " +
             std::to_string(rng.UniformInt(0, 100)) + " AND " +
             PickColumn(rng) + " < " + std::to_string(rng.UniformInt(100, 999)) +
             ")";
      break;
    case 2: {
      text = PickColumn(rng) + " IN (";
      const int n = rng.UniformInt(1, 8);
      for (int i = 0; i < n; ++i) {
        if (i > 0) text += ", ";
        text += std::to_string(rng.UniformInt(0, 500));
      }
      text += ")";
      break;
    }
    default:
      text = PickColumn(rng) + " = '" + PickTable(rng) + "'";
      break;
  }
  auto parsed = sql::ParseExpression(text);
  return parsed.ok() ? std::move(parsed).value() : nullptr;
}

/// Wraps `child` in one randomly chosen unary operator.
PlanNodePtr WrapUnary(Rng& rng, PlanNodePtr child) {
  switch (rng.NextUint64(6)) {
    case 0:
      return MakeFilter(MakePredicate(rng), std::move(child));
    case 1:
      return MakeLimit(rng.UniformInt(1, 100000), std::move(child));
    case 2:
      return MakeDistinct(std::move(child));
    case 3:
      return MakeExchange(rng.Bernoulli(0.5) ? plan::ExchangeKind::kGather
                                             : plan::ExchangeKind::kRepartition,
                          std::move(child));
    case 4: {
      std::vector<sql::ExprPtr> keys;
      keys.push_back(MakePredicate(rng));
      return MakeSort(std::move(keys), {rng.Bernoulli(0.5)}, std::move(child));
    }
    default: {
      std::vector<std::string> group_keys = {PickColumn(rng)};
      std::vector<sql::ExprPtr> aggs;
      aggs.push_back(MakePredicate(rng));
      return MakeAggregate(std::move(group_keys), std::move(aggs),
                           std::move(child));
    }
  }
}

/// Random join tree over `leaves` scans (iterative bottom-up combine).
PlanNodePtr BuildJoinTree(Rng& rng, size_t leaves) {
  std::vector<PlanNodePtr> forest;
  forest.reserve(leaves);
  for (size_t i = 0; i < leaves; ++i) {
    PlanNodePtr scan = MakeTableScan(PickTable(rng));
    if (rng.Bernoulli(0.5)) scan = MakeFilter(MakePredicate(rng), std::move(scan));
    forest.push_back(std::move(scan));
  }
  while (forest.size() > 1) {
    const size_t a = rng.NextUint64(forest.size());
    PlanNodePtr left = std::move(forest[a]);
    forest.erase(forest.begin() + static_cast<ptrdiff_t>(a));
    const size_t b = rng.NextUint64(forest.size());
    PlanNodePtr right = std::move(forest[b]);
    forest[b] = MakeJoin(rng.Bernoulli(0.8) ? sql::JoinType::kInner
                                            : sql::JoinType::kLeft,
                         MakePredicate(rng), std::move(left), std::move(right));
  }
  return std::move(forest.front());
}

}  // namespace

std::string FuzzBasePlanText(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  PlanNodePtr root;
  switch (rng.NextUint64(3)) {
    case 0: {
      // Deep unary chain over a single scan.
      root = MakeTableScan(PickTable(rng));
      const int depth = rng.UniformInt(1, 48);
      for (int i = 0; i < depth; ++i) root = WrapUnary(rng, std::move(root));
      break;
    }
    case 1:
      // Bushy join tree.
      root = BuildJoinTree(rng, static_cast<size_t>(rng.UniformInt(2, 10)));
      break;
    default: {
      // Mixed: join tree under a short unary chain, predicate-heavy.
      root = BuildJoinTree(rng, static_cast<size_t>(rng.UniformInt(2, 5)));
      const int wraps = rng.UniformInt(1, 6);
      for (int i = 0; i < wraps; ++i) {
        root = MakeFilter(MakePredicate(rng), std::move(root));
      }
      break;
    }
  }
  return plan::PlanToText(*root);
}

std::string MutatePlanText(const std::string& base, uint64_t seed) {
  Rng rng(seed ^ 0xd1b54a32d192ed03ULL);
  std::string text = base;
  const int rounds = rng.UniformInt(1, 3);
  for (int round = 0; round < rounds; ++round) {
    if (text.empty()) break;
    switch (rng.NextUint64(6)) {
      case 0:
        // Truncation mid-record (often mid-line, splitting a token).
        text.resize(rng.NextUint64(text.size()));
        break;
      case 1: {
        // Depth spike: splice in a line with an enormous indent run, so the
        // parser sees an indentation jump that implies absurd tree depth.
        const size_t indent = 2 * (1 + rng.NextUint64(1u << 18));
        std::string spike(indent, ' ');
        spike += "- Distinct\n";
        const size_t at = rng.NextUint64(text.size());
        const size_t line_start = text.rfind('\n', at);
        text.insert(line_start == std::string::npos ? 0 : line_start + 1,
                    spike);
        break;
      }
      case 2: {
        // Raw byte noise: flip a handful of bytes anywhere, including into
        // NUL/control/high-bit values the grammar never emits.
        const int flips = rng.UniformInt(1, 16);
        for (int i = 0; i < flips; ++i) {
          text[rng.NextUint64(text.size())] =
              static_cast<char>(rng.NextUint64(256));
        }
        break;
      }
      case 3: {
        // Token bomb: append a Filter whose IN-list predicate has far more
        // tokens than any legitimate plan line.
        std::string bomb = "- Filter [qty IN (";
        const int n = rng.UniformInt(2000, 12000);
        for (int i = 0; i < n; ++i) {
          if (i > 0) bomb += ",";
          bomb += std::to_string(i);
        }
        bomb += ")]\n";
        text += bomb;
        break;
      }
      case 4: {
        // Line duplication/splice: repeat a random slice of the text so
        // sibling ordering and indent monotonicity break.
        const size_t from = rng.NextUint64(text.size());
        const size_t len =
            std::min<size_t>(text.size() - from, 1 + rng.NextUint64(512));
        const std::string slice = text.substr(from, len);
        text.insert(rng.NextUint64(text.size()), slice);
        break;
      }
      default: {
        // Oversized single line: one line grown past any sane byte budget.
        std::string fat = "- TableScan [";
        fat.append(1 + rng.NextUint64(1u << 18), 'x');
        fat += "]\n";
        text += fat;
        break;
      }
    }
  }
  return text;
}

void RunFuzzCase(const std::string& text, const plan::PlanLimits& limits,
                 FuzzCampaignStats* stats) {
  ++stats->cases;
  auto parsed = plan::ParsePlanText(text, limits);
  if (!parsed.ok()) {
    switch (parsed.status().code()) {
      case StatusCode::kResourceExhausted:
        ++stats->limit_rejects;
        break;
      case StatusCode::kParseError:
      case StatusCode::kInvalidArgument:
        ++stats->parse_errors;
        break;
      default:
        ++stats->other_errors;
        break;
    }
    return;
  }
  ++stats->parsed_ok;
  const plan::PlanNodePtr root = std::move(parsed).value();

  // The plan passed the parse-time governor; everything downstream must now
  // digest it without faulting. Statuses are tolerated, crashes are not.
  (void)plan::CheckPlanLimits(*root, limits);
  (void)plan::ComputePlanStats(*root);
  (void)FingerprintPlan(*root);

  auto recast = otp::RecastPlan(*root);
  if (recast.ok()) (void)otp::Flatten(recast.value());

  const plan::PlanNodePtr clone = root->Clone();
  const std::string round_trip = plan::PlanToText(*clone);
  (void)plan::ParsePlanText(round_trip, limits);
  // Teardown of root/clone/recast exercises the iterative destructors.
}

FuzzCampaignStats RunFuzzCampaign(uint64_t seed_begin, uint64_t seed_end,
                                  const plan::PlanLimits& limits) {
  FuzzCampaignStats stats;
  for (uint64_t seed = seed_begin; seed < seed_end; ++seed) {
    const std::string base = FuzzBasePlanText(seed);
    RunFuzzCase(base, limits, &stats);
    RunFuzzCase(MutatePlanText(base, seed), limits, &stats);
  }
  return stats;
}

}  // namespace prestroid::serve
