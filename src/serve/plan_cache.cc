#include "serve/plan_cache.h"

#include <utility>

namespace prestroid::serve {

std::shared_ptr<const core::PlanFeatures> PlanFeatureCache::Lookup(
    uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->features;
}

void PlanFeatureCache::Insert(
    uint64_t key, std::shared_ptr<const core::PlanFeatures> features) {
  if (capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->features = std::move(features);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (entries_.size() >= capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, std::move(features)});
  entries_.emplace(key, lru_.begin());
}

void PlanFeatureCache::Clear() {
  entries_.clear();
  lru_.clear();
}

}  // namespace prestroid::serve
