#ifndef PRESTROID_SERVE_TENANT_QUOTA_H_
#define PRESTROID_SERVE_TENANT_QUOTA_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/status.h"

namespace prestroid::serve {

/// Numeric tenant identity carried on every sharded-serving request.
/// Tenant 0 is the default tenant; single-tenant deployments never need to
/// set anything else.
using TenantId = uint32_t;

/// Per-tenant admission budget. Zero means "unlimited" for each knob, so a
/// default-constructed quota admits everything (the single-runtime parity
/// configuration).
struct TenantQuota {
  /// Requests a tenant may have queued or executing at once. Submissions
  /// beyond it are shed with kResourceExhausted — they never reach a shard
  /// queue, so one chatty tenant cannot displace others' admission slots.
  size_t max_in_flight = 0;
  /// Estimated featurization scratch bytes the tenant's in-flight requests
  /// may pin at once (charged at admission from plan size, released on
  /// response).
  size_t max_scratch_bytes = 0;
};

/// Monotonic per-tenant counters plus an instantaneous usage snapshot.
struct TenantCounters {
  TenantId tenant = 0;
  size_t admitted = 0;       // requests that passed quota admission
  size_t quota_sheds = 0;    // requests refused over quota
  size_t in_flight = 0;      // snapshot: currently admitted, not yet resolved
  size_t scratch_bytes = 0;  // snapshot: currently charged scratch estimate
};

/// Thread-safe per-tenant admission table layered on top of the PlanLimits
/// governor: limits bound what one PLAN may cost, quotas bound what one
/// TENANT may have outstanding. TryAdmit/Release bracket each request's
/// lifetime; both are O(1) hash-map updates under one mutex, deliberately
/// cheap enough to sit on the submission fast path.
class TenantQuotaTable {
 public:
  /// `default_quota` applies to any tenant without an explicit SetQuota.
  explicit TenantQuotaTable(TenantQuota default_quota = {})
      : default_quota_(default_quota) {}

  /// Installs (or replaces) one tenant's quota. Takes effect on the next
  /// TryAdmit; already-admitted requests are never retroactively shed.
  void SetQuota(TenantId tenant, TenantQuota quota);

  /// Admits one request charging `scratch_bytes` against the tenant's
  /// budgets, or returns kResourceExhausted naming the exhausted dimension
  /// (counted in quota_sheds). An admitted request MUST be Released exactly
  /// once when its promise resolves.
  Status TryAdmit(TenantId tenant, size_t scratch_bytes);

  /// Returns one admission's in-flight slot and scratch charge.
  void Release(TenantId tenant, size_t scratch_bytes);

  TenantCounters Snapshot(TenantId tenant) const;

  /// Every tenant ever seen, ordered by tenant id (stable bench output).
  std::vector<TenantCounters> SnapshotAll() const;

  /// Sum of quota_sheds across tenants (the ServingStats roll-up).
  size_t TotalSheds() const;

 private:
  struct TenantState {
    TenantQuota quota;
    bool has_quota = false;  // explicit SetQuota vs default
    size_t admitted = 0;
    size_t quota_sheds = 0;
    size_t in_flight = 0;
    size_t scratch_bytes = 0;
  };

  TenantState& StateLocked(TenantId tenant);

  TenantQuota default_quota_;
  mutable std::mutex mu_;
  std::unordered_map<TenantId, TenantState> tenants_;
};

}  // namespace prestroid::serve

#endif  // PRESTROID_SERVE_TENANT_QUOTA_H_
