#ifndef PRESTROID_SERVE_SERVING_SHARD_H_
#define PRESTROID_SERVE_SERVING_SHARD_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/quant_profile.h"
#include "cost/serving_estimator.h"
#include "plan/plan_limits.h"
#include "plan/plan_node.h"
#include "serve/plan_cache.h"
#include "serve/tenant_quota.h"
#include "util/histogram.h"
#include "util/memory_tracker.h"
#include "util/status.h"

namespace prestroid::serve {

/// Admission-queue and batching policy for one serving shard (and, via the
/// single-shard ServingRuntime wrapper, for the whole legacy runtime).
struct ServingRuntimeConfig {
  /// Bounded request queue; a Submit beyond this depth is rejected with
  /// kResourceExhausted instead of blocking the producer.
  size_t queue_depth = 256;
  /// Largest fused forward pass. 1 degenerates to the legacy single-query
  /// serving path (per-request EstimateWithFallback, no fingerprint cache,
  /// no fused staging); caching and batch fusion engage at >= 2.
  size_t max_batch = 32;
  /// After the first request of a batch arrives, how long the worker waits
  /// for the batch to fill before running a partial one. 0 = never wait
  /// (drain whatever is queued).
  size_t batch_window_us = 200;
  /// Plan-fingerprint cache entries; 0 disables the cache.
  size_t cache_entries = 1024;
  /// Resource governor applied to every submitted plan *before* it is
  /// fingerprinted or featurized. Over-limit plans are rejected at admission
  /// (kInvalidArgument, counted in ServingStats::limit_rejects) so a hostile
  /// plan never reaches the hashing/encoding machinery.
  plan::PlanLimits plan_limits;
  /// Inference precision for the shard's model tier (DESIGN.md §5.8). kFp32
  /// is the exact historical path; kBf16/kInt8 freeze the attached
  /// pipeline's weights into the resident kernel tier at Start() and after
  /// every pipeline swap. If freezing fails (e.g. a profile/model layer
  /// mismatch) the shard serves fp32 and counts a precision_fallback — the
  /// degradation-chain contract: never crash, never refuse to serve.
  Precision precision = Precision::kFp32;
  /// Calibrated activation scales for kInt8 (null = dynamic per-batch
  /// absmax). Shared because every shard of a sharded runtime applies the
  /// same profile to its own pipeline replica.
  std::shared_ptr<const core::QuantizationProfile> quant_profile;
};

/// Admission charges riding along with one routed request: the tenant's
/// in-flight/scratch-quota slot and the box-level memory-tracker charge.
/// Released exactly once — when the request's promise resolves, or
/// immediately if the shard rejects the submission. Default-constructed
/// tickets (direct single-shard submissions) release nothing.
struct ShardTicket {
  TenantQuotaTable* quotas = nullptr;
  TenantId tenant = 0;
  MemoryTracker* memory = nullptr;
  size_t charged_bytes = 0;

  void Release() {
    if (quotas != nullptr) {
      quotas->Release(tenant, charged_bytes);
      quotas = nullptr;
    }
    if (memory != nullptr) {
      memory->Release(charged_bytes);
      memory = nullptr;
    }
  }
};

/// One shard of the batched serving tier: a bounded MPMC admission queue, a
/// single batch-worker thread, a plan-fingerprint feature cache, and a
/// dedicated ServingEstimator — the complete single-runtime serving engine,
/// packaged so ShardedServingRuntime can own N of them.
///
/// Producers Submit() plans into the queue and receive futures; the worker
/// drains under the batch-window / max-batch policy, featurizes each
/// distinct plan once (fingerprint LRU cache), runs ONE fused eval-mode
/// forward pass per batch, and resolves the futures. Requests that cannot
/// take the model tier degrade per item through the estimator's fallback
/// chain, so a batch never fails wholesale.
///
/// The fused forward runs in eval mode (dropout off, batch-norm running
/// statistics, masked per-tree pooling), so each row's prediction is
/// independent of what else shares the batch: batched results equal
/// single-query EstimateWithFallback results regardless of arrival order.
///
/// Thread-safety: Submit/SubmitRouted/EstimateBlocking/StatsSnapshot/
/// LatencySnapshot/InvalidateCache may be called from any thread. The
/// estimator, cache, and scratch arena are confined to the worker thread
/// (snapshot readers take the same lock the worker holds while serving a
/// batch). The estimator must not be used directly by other threads while
/// the shard is running.
///
/// Lifetime: submitted plans are borrowed, not copied — the caller must keep
/// a plan alive until its future resolves. The estimator (and the tracker, if
/// any) must outlive the shard.
class ServingShard {
 public:
  /// `memory` (optional) tracks the shard's featurization scratch arena; the
  /// arena's block capacity is charged via MemoryTracker::Charge (the
  /// admission-time per-request charge is the enforcement point).
  explicit ServingShard(cost::ServingEstimator* estimator,
                        ServingRuntimeConfig config = {},
                        MemoryTracker* memory = nullptr);
  ~ServingShard();

  ServingShard(const ServingShard&) = delete;
  ServingShard& operator=(const ServingShard&) = delete;

  /// Spawns the batch worker. Submissions made before Start() sit in the
  /// queue (admission control applies) and are served once it runs.
  /// Restartable: Start() after Shutdown() reopens admission and resets the
  /// queue high-watermark, so each run reports its own peak.
  Status Start();

  /// Stops accepting work, drains every queued request (resolving its
  /// future), and joins the worker. If Start() was never called the drain
  /// happens inline on the calling thread. Idempotent; Start() may be called
  /// again afterwards.
  void Shutdown();

  /// Enqueues one estimate request, running the PlanLimits governor first (a
  /// rejected plan is never fingerprinted). Returns kResourceExhausted
  /// immediately when the queue is full (the request was never admitted),
  /// kInvalidArgument when the plan fails the governor (counted in
  /// limit_rejects), and kInvalidArgument after Shutdown(). deadline_ms <= 0
  /// uses the estimator's configured default; the deadline covers queue wait
  /// + compute.
  Result<std::future<cost::ServingEstimate>> Submit(const plan::PlanNode& plan,
                                                    double deadline_ms = 0.0);

  /// Sharded-tier entry point: the facade has already run the governor,
  /// computed `fingerprint` (used verbatim for the cache key, so identical
  /// plans routed to this shard share one featurization), and charged the
  /// admission `ticket`. Takes ownership of the ticket unconditionally — it
  /// is released when the promise resolves, or immediately on rejection.
  Result<std::future<cost::ServingEstimate>> SubmitRouted(
      const plan::PlanNode& plan, double deadline_ms, uint64_t fingerprint,
      ShardTicket ticket);

  /// Blocking convenience wrapper: waits for queue space if necessary (so it
  /// never sheds load), then waits for the result. Requires a running
  /// worker — called between construction and Start() it returns
  /// kFailedPrecondition instead of deadlocking once the queue fills. After
  /// Shutdown() it serves inline on the calling thread (the worker is gone,
  /// so this is race-free).
  Result<cost::ServingEstimate> EstimateBlocking(const plan::PlanNode& plan,
                                                 double deadline_ms = 0.0);

  /// Retires every cached plan encoding (e.g. after catalog churn or a
  /// pipeline swap made old featurizations stale).
  void InvalidateCache();

  /// Atomically replaces the estimator's model tier while the shard keeps
  /// serving (RCU-style): blocks until the in-flight batch (if any) finishes
  /// on the old model, attaches `pipeline`, resets the model-latency EWMA,
  /// bumps the feature-cache generation (stale featurizations can never
  /// reach the new model), and returns the previous pipeline so the caller
  /// can retain it for instant rollback. Queued requests are never dropped:
  /// they simply run on whichever model is attached when their batch is
  /// served. Passing nullptr detaches the model tier (the degradation chain
  /// keeps answering). `is_rollback` only selects which ServingStats counter
  /// (model_swaps vs model_rollbacks) the transition increments.
  ///
  /// Instrumented with FaultSite::kModelSwap: an injected fault aborts the
  /// swap before any state is touched, proving a crashed swap leaves the
  /// active model, cache, and generation fully intact.
  Result<std::unique_ptr<core::PrestroidPipeline>> SwapPipeline(
      std::unique_ptr<core::PrestroidPipeline> pipeline,
      bool is_rollback = false);

  /// Acquires this shard's serving lock, blocking until the in-flight batch
  /// (if any) completes. The cross-shard swap path locks every shard this
  /// way (in shard order — the only multi-shard lock site, so no deadlock),
  /// then exchanges pipelines via SwapPipelineLocked.
  std::unique_lock<std::mutex> LockServing() const {
    return std::unique_lock<std::mutex>(serve_mu_);
  }

  /// The mutation body of SwapPipeline, for callers already holding
  /// LockServing() (no fault-injection check — the caller performs one check
  /// for the whole multi-shard transaction).
  std::unique_ptr<core::PrestroidPipeline> SwapPipelineLocked(
      std::unique_ptr<core::PrestroidPipeline> pipeline, bool is_rollback);

  /// Estimator counters merged with the shard's queue/cache counters.
  cost::ServingStats StatsSnapshot() const;

  /// End-to-end request latency distribution (milliseconds, including queue
  /// wait), over every request the worker has resolved.
  LatencyHistogram LatencySnapshot() const;

  const ServingRuntimeConfig& config() const { return config_; }
  cost::ServingEstimator* estimator() { return estimator_; }

  /// High-water mark of the worker's scratch-arena usage (bytes), for the
  /// facade's memory observability.
  size_t arena_peak_bytes() const;

  /// Arena block capacity currently charged against the box MemoryTracker.
  /// Retained across Reset by design — this is the shard's steady-state
  /// memory footprint, not a leak.
  size_t arena_capacity_bytes() const;

  /// Precision the model tier is actually serving at: config().precision
  /// when the freeze succeeded, kFp32 after a precision fallback or when no
  /// pipeline is attached.
  Precision active_precision() const;

  /// Bytes of the attached pipeline's GEMM weights as served (resident
  /// low-precision layouts when frozen, fp32 otherwise); 0 with no pipeline.
  /// Charged against the box MemoryTracker while resident.
  size_t resident_weight_bytes() const;

 private:
  struct PendingRequest {
    const plan::PlanNode* plan;
    double deadline_ms;
    std::chrono::steady_clock::time_point enqueue_time;
    /// Facade-precomputed plan fingerprint (SubmitRouted); when absent the
    /// worker hashes the plan itself (direct Submit path).
    uint64_t fingerprint = 0;
    bool has_fingerprint = false;
    ShardTicket ticket;
    std::promise<cost::ServingEstimate> promise;
  };

  Result<std::future<cost::ServingEstimate>> Enqueue(const plan::PlanNode& plan,
                                                     double deadline_ms,
                                                     uint64_t fingerprint,
                                                     bool has_fingerprint,
                                                     ShardTicket ticket);

  void WorkerLoop();
  /// Serves one drained batch: per-item admission + cache lookup, one fused
  /// forward pass for the admitted items, per-item fallback for the rest.
  void ServeBatch(std::vector<PendingRequest>& batch);

  /// Applies config_.precision to the attached pipeline (serve_mu_ held):
  /// releases any prior resident-weight memory charge, freezes the weights
  /// at the configured precision, and charges the new resident footprint.
  /// On failure the pipeline stays fp32 and precision_fallbacks_ ticks.
  /// Called from Start() and after every SwapPipelineLocked.
  void ApplyPrecisionLocked();

  cost::ServingEstimator* estimator_;
  ServingRuntimeConfig config_;
  MemoryTracker* memory_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;  // worker waits: work available / stop
  std::condition_variable space_cv_;  // EstimateBlocking waits: queue has room
  std::deque<PendingRequest> queue_;
  bool stop_ = false;
  size_t rejected_requests_ = 0;
  size_t limit_rejects_ = 0;
  size_t queue_high_watermark_ = 0;

  /// Serializes worker access to the estimator + cache + histogram + arena
  /// against snapshot readers and pipeline swaps.
  mutable std::mutex serve_mu_;
  PlanFeatureCache cache_;
  uint64_t cache_generation_ = 0;
  LatencyHistogram latency_hist_;
  size_t model_swaps_ = 0;
  size_t model_rollbacks_ = 0;
  Precision active_precision_ = Precision::kFp32;
  size_t resident_weight_bytes_ = 0;  // as-served weight footprint
  size_t resident_charged_bytes_ = 0; // portion charged to memory_
  size_t quantized_batches_ = 0;
  size_t precision_fallbacks_ = 0;
  /// Per-batch staging storage (deadline/pointer arrays), reset per batch and
  /// charged against the box-level tracker. Worker-confined under serve_mu_.
  ScratchArena arena_;

  std::thread worker_;
  bool started_ = false;
};

}  // namespace prestroid::serve

#endif  // PRESTROID_SERVE_SERVING_SHARD_H_
