#ifndef PRESTROID_SERVE_SERVING_RUNTIME_H_
#define PRESTROID_SERVE_SERVING_RUNTIME_H_

#include <future>
#include <memory>
#include <vector>

#include "cost/serving_estimator.h"
#include "plan/plan_node.h"
#include "serve/serving_host.h"
#include "serve/serving_shard.h"
#include "util/histogram.h"
#include "util/status.h"

namespace prestroid::serve {

/// Concurrent batched serving front end over a ServingEstimator: the
/// single-shard configuration of the serving tier.
///
/// All queueing, batching, caching, and swap mechanics live in ServingShard
/// (serve/serving_shard.h); this class pins exactly one shard behind the
/// historical single-runtime API and implements ServingHost so the model
/// lifecycle manager can promote against it and a sharded tier
/// interchangeably. ShardedServingRuntime (serve/sharded_runtime.h) is the
/// multi-core, multi-tenant composition of the same shard.
///
/// Thread-safety and lifetime contracts are the shard's: Submit/Estimate/
/// snapshots from any thread; submitted plans are borrowed until their
/// future resolves; the estimator must outlive the runtime.
class ServingRuntime : public ServingHost {
 public:
  explicit ServingRuntime(cost::ServingEstimator* estimator,
                          ServingRuntimeConfig config = {})
      : shard_(estimator, config) {}

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Spawns the batch worker. Submissions made before Start() sit in the
  /// queue (admission control applies) and are served once it runs.
  /// Restartable after Shutdown(); each run reports its own queue
  /// high-watermark.
  Status Start() { return shard_.Start(); }

  /// Stops accepting work, drains every queued request (resolving its
  /// future), and joins the worker. If Start() was never called the drain
  /// happens inline on the calling thread. Idempotent.
  void Shutdown() { shard_.Shutdown(); }

  /// Enqueues one estimate request. Returns kResourceExhausted immediately
  /// when the queue is full (the request was never admitted),
  /// kInvalidArgument when the plan fails the PlanLimits governor (counted
  /// in limit_rejects), and kInvalidArgument after Shutdown(). deadline_ms
  /// <= 0 uses the estimator's configured default; the deadline covers queue
  /// wait + compute.
  Result<std::future<cost::ServingEstimate>> Submit(const plan::PlanNode& plan,
                                                    double deadline_ms = 0.0) {
    return shard_.Submit(plan, deadline_ms);
  }

  /// Blocking convenience wrapper: waits for queue space if necessary (so it
  /// never sheds load), then waits for the result. Requires a running
  /// worker — called without Start() it returns kFailedPrecondition instead
  /// of deadlocking once the queue fills. After Shutdown() it serves inline.
  Result<cost::ServingEstimate> Estimate(const plan::PlanNode& plan,
                                         double deadline_ms = 0.0) {
    return shard_.EstimateBlocking(plan, deadline_ms);
  }

  /// Retires every cached plan encoding (e.g. after catalog churn or a
  /// pipeline swap made old featurizations stale).
  void InvalidateCache() { shard_.InvalidateCache(); }

  /// Atomically replaces the estimator's model tier while the runtime keeps
  /// serving; see ServingShard::SwapPipeline for the full RCU-style and
  /// fault-injection contract.
  Result<std::unique_ptr<core::PrestroidPipeline>> SwapPipeline(
      std::unique_ptr<core::PrestroidPipeline> pipeline,
      bool is_rollback = false) {
    return shard_.SwapPipeline(std::move(pipeline), is_rollback);
  }

  /// Estimator counters merged with the runtime's queue/cache counters.
  cost::ServingStats StatsSnapshot() const override {
    return shard_.StatsSnapshot();
  }

  /// End-to-end request latency distribution (milliseconds, including queue
  /// wait), over every request the worker has resolved.
  LatencyHistogram LatencySnapshot() const { return shard_.LatencySnapshot(); }

  const ServingRuntimeConfig& config() const { return shard_.config(); }

  /// Direct shard access for tests and per-shard observability (precision,
  /// resident weight bytes, arena counters).
  ServingShard& shard() { return shard_; }
  const ServingShard& shard() const { return shard_; }

  // --- ServingHost ---------------------------------------------------------

  size_t ShardCount() const override { return 1; }

  /// Single-shard swap transaction: expects exactly one pipeline and returns
  /// the one previous pipeline, with the same fault-injection semantics as
  /// SwapPipeline.
  Result<std::vector<std::unique_ptr<core::PrestroidPipeline>>> SwapPipelines(
      std::vector<std::unique_ptr<core::PrestroidPipeline>> pipelines,
      bool is_rollback) override {
    if (pipelines.size() != 1) {
      return Status::InvalidArgument(
          "single-shard runtime expects exactly 1 pipeline, got " +
          std::to_string(pipelines.size()));
    }
    auto swapped = shard_.SwapPipeline(std::move(pipelines[0]), is_rollback);
    if (!swapped.ok()) return swapped.status();
    std::vector<std::unique_ptr<core::PrestroidPipeline>> previous;
    previous.push_back(std::move(*swapped));
    return previous;
  }

 private:
  ServingShard shard_;
};

}  // namespace prestroid::serve

#endif  // PRESTROID_SERVE_SERVING_RUNTIME_H_
