#ifndef PRESTROID_SERVE_SERVING_RUNTIME_H_
#define PRESTROID_SERVE_SERVING_RUNTIME_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cost/serving_estimator.h"
#include "plan/plan_limits.h"
#include "plan/plan_node.h"
#include "serve/plan_cache.h"
#include "util/histogram.h"
#include "util/status.h"

namespace prestroid::serve {

/// Admission-queue and batching policy for the concurrent serving runtime.
struct ServingRuntimeConfig {
  /// Bounded request queue; a Submit beyond this depth is rejected with
  /// kResourceExhausted instead of blocking the producer.
  size_t queue_depth = 256;
  /// Largest fused forward pass. 1 degenerates to the legacy single-query
  /// serving path (per-request EstimateWithFallback, no fingerprint cache,
  /// no fused staging); caching and batch fusion engage at >= 2.
  size_t max_batch = 32;
  /// After the first request of a batch arrives, how long the worker waits
  /// for the batch to fill before running a partial one. 0 = never wait
  /// (drain whatever is queued).
  size_t batch_window_us = 200;
  /// Plan-fingerprint cache entries; 0 disables the cache.
  size_t cache_entries = 1024;
  /// Resource governor applied to every submitted plan *before* it is
  /// fingerprinted or featurized. Over-limit plans are rejected at admission
  /// (kInvalidArgument, counted in ServingStats::limit_rejects) so a hostile
  /// plan never reaches the hashing/encoding machinery.
  plan::PlanLimits plan_limits;
};

/// Concurrent batched serving front end over a ServingEstimator.
///
/// Producers Submit() plans into a bounded MPMC queue and receive futures; a
/// single batch-worker thread drains the queue under the batch-window /
/// max-batch policy, featurizes each distinct plan once (plan-fingerprint
/// LRU cache), runs ONE fused eval-mode forward pass per batch through the
/// estimator's pipeline, and resolves the futures. Requests that cannot take
/// the model tier — validation reject, deadline expired while queued, model
/// error — degrade per item through the estimator's existing fallback chain,
/// so a batch never fails wholesale.
///
/// The fused forward runs in eval mode (dropout off, batch-norm running
/// statistics, masked per-tree pooling), so each row's prediction is
/// independent of what else shares the batch: batched results equal
/// single-query EstimateWithFallback results regardless of arrival order.
///
/// Thread-safety: Submit/Estimate/StatsSnapshot/LatencySnapshot/
/// InvalidateCache may be called from any thread. The estimator and cache
/// are confined to the worker thread (snapshot readers take the same lock
/// the worker holds while serving a batch). The estimator must not be used
/// directly by other threads while the runtime is running.
///
/// Lifetime: submitted plans are borrowed, not copied — the caller must keep
/// a plan alive until its future resolves. The estimator must outlive the
/// runtime.
class ServingRuntime {
 public:
  explicit ServingRuntime(cost::ServingEstimator* estimator,
                          ServingRuntimeConfig config = {});
  ~ServingRuntime();

  ServingRuntime(const ServingRuntime&) = delete;
  ServingRuntime& operator=(const ServingRuntime&) = delete;

  /// Spawns the batch worker. Submissions made before Start() sit in the
  /// queue (admission control applies) and are served once it runs.
  Status Start();

  /// Stops accepting work, drains every queued request (resolving its
  /// future), and joins the worker. If Start() was never called the drain
  /// happens inline on the calling thread. Idempotent.
  void Shutdown();

  /// Enqueues one estimate request. Returns kResourceExhausted immediately
  /// when the queue is full (the request was never admitted),
  /// kInvalidArgument when the plan fails the PlanLimits governor (counted
  /// in limit_rejects), and kInvalidArgument after Shutdown(). deadline_ms
  /// <= 0 uses the estimator's configured default; the deadline covers queue
  /// wait + compute.
  Result<std::future<cost::ServingEstimate>> Submit(const plan::PlanNode& plan,
                                                    double deadline_ms = 0.0);

  /// Blocking convenience wrapper: waits for queue space if necessary (so it
  /// never sheds load), then waits for the result. Requires a running
  /// worker; calling it without Start() deadlocks once the queue fills.
  cost::ServingEstimate Estimate(const plan::PlanNode& plan,
                                 double deadline_ms = 0.0);

  /// Retires every cached plan encoding (e.g. after catalog churn or a
  /// pipeline swap made old featurizations stale).
  void InvalidateCache();

  /// Atomically replaces the estimator's model tier while the runtime keeps
  /// serving (RCU-style): blocks until the in-flight batch (if any) finishes
  /// on the old model, attaches `pipeline`, resets the model-latency EWMA,
  /// bumps the feature-cache generation (stale featurizations can never
  /// reach the new model), and returns the previous pipeline so the caller
  /// can retain it for instant rollback. Queued requests are never dropped:
  /// they simply run on whichever model is attached when their batch is
  /// served. Passing nullptr detaches the model tier (the degradation chain
  /// keeps answering). `is_rollback` only selects which ServingStats counter
  /// (model_swaps vs model_rollbacks) the transition increments.
  ///
  /// Instrumented with FaultSite::kModelSwap: an injected fault aborts the
  /// swap before any state is touched, proving a crashed swap leaves the
  /// active model, cache, and generation fully intact.
  Result<std::unique_ptr<core::PrestroidPipeline>> SwapPipeline(
      std::unique_ptr<core::PrestroidPipeline> pipeline,
      bool is_rollback = false);

  /// Estimator counters merged with the runtime's queue/cache counters.
  cost::ServingStats StatsSnapshot() const;

  /// End-to-end request latency distribution (milliseconds, including queue
  /// wait), over every request the worker has resolved.
  LatencyHistogram LatencySnapshot() const;

  const ServingRuntimeConfig& config() const { return config_; }

 private:
  struct PendingRequest {
    const plan::PlanNode* plan;
    double deadline_ms;
    std::chrono::steady_clock::time_point enqueue_time;
    std::promise<cost::ServingEstimate> promise;
  };

  void WorkerLoop();
  /// Serves one drained batch: per-item admission + cache lookup, one fused
  /// forward pass for the admitted items, per-item fallback for the rest.
  void ServeBatch(std::vector<PendingRequest>& batch);

  cost::ServingEstimator* estimator_;
  ServingRuntimeConfig config_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;  // worker waits: work available / stop
  std::condition_variable space_cv_;  // Estimate() waits: queue has room
  std::deque<PendingRequest> queue_;
  bool stop_ = false;
  size_t rejected_requests_ = 0;
  size_t limit_rejects_ = 0;
  size_t queue_high_watermark_ = 0;

  /// Serializes worker access to the estimator + cache + histogram against
  /// snapshot readers.
  mutable std::mutex serve_mu_;
  PlanFeatureCache cache_;
  uint64_t cache_generation_ = 0;
  LatencyHistogram latency_hist_;
  size_t model_swaps_ = 0;
  size_t model_rollbacks_ = 0;

  std::thread worker_;
  bool started_ = false;
};

}  // namespace prestroid::serve

#endif  // PRESTROID_SERVE_SERVING_RUNTIME_H_
