#include "serve/sharded_runtime.h"

#include <mutex>
#include <string>
#include <utility>

#include "plan/plan_limits.h"
#include "plan/plan_stats.h"
#include "serve/plan_fingerprint.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace prestroid::serve {

ShardedServingRuntime::ShardedServingRuntime(
    std::vector<cost::ServingEstimator*> estimators,
    ShardedRuntimeConfig config)
    : config_(config),
      memory_(config.memory_budget_bytes),
      quotas_(config.default_tenant_quota) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.per_node_scratch_bytes == 0) config_.per_node_scratch_bytes = 1;
  PRESTROID_CHECK(estimators.size() == config_.shards);
  shards_.reserve(config_.shards);
  for (size_t i = 0; i < config_.shards; ++i) {
    PRESTROID_CHECK(estimators[i] != nullptr);
    shards_.push_back(
        std::make_unique<ServingShard>(estimators[i], config_.shard, &memory_));
  }
}

ShardedServingRuntime::~ShardedServingRuntime() { Shutdown(); }

Status ShardedServingRuntime::Start() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    Status started = shards_[i]->Start();
    if (!started.ok()) {
      return Status(started.code(), "shard " + std::to_string(i) + ": " +
                                        started.message());
    }
  }
  return Status::OK();
}

void ShardedServingRuntime::Shutdown() {
  for (auto& shard : shards_) shard->Shutdown();
}

void ShardedServingRuntime::SetTenantQuota(TenantId tenant, TenantQuota quota) {
  quotas_.SetQuota(tenant, quota);
}

Result<std::future<cost::ServingEstimate>> ShardedServingRuntime::Submit(
    const plan::PlanNode& plan, double deadline_ms, TenantId tenant) {
  // Stage 1 — resource governor, BEFORE any hashing or sizing of the plan:
  // a rejected plan is never fingerprinted (the ingestion-hardening
  // invariant). Early-exits at the limit, so its cost is bounded by the
  // limits themselves.
  Status within_limits =
      plan::CheckPlanLimits(plan, config_.shard.plan_limits);
  if (!within_limits.ok()) {
    limit_rejects_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("plan rejected by resource governor: " +
                                   within_limits.message());
  }

  // Stage 2 — tenant quota, charged with the plan's scratch estimate. The
  // governor just bounded node_count, so this walk is limit-bounded too.
  const size_t scratch_bytes =
      plan::ComputePlanStats(plan).node_count * config_.per_node_scratch_bytes;
  Status admitted = quotas_.TryAdmit(tenant, scratch_bytes);
  if (!admitted.ok()) return admitted;

  // Stage 3 — box-level memory budget across every tenant and shard.
  if (!memory_.TryCharge(scratch_bytes)) {
    quotas_.Release(tenant, scratch_bytes);
    return Status::ResourceExhausted(
        "serving memory budget exhausted (" +
        std::to_string(config_.memory_budget_bytes) + " bytes)");
  }

  // Stage 4 — fingerprint routing. Identical plans hash identically, land on
  // the same shard, and share one cached featurization. The shard reuses the
  // fingerprint for its cache key (no re-hash) and owns the ticket from here:
  // released when the promise resolves, or immediately on queue rejection.
  const uint64_t fingerprint = FingerprintPlan(plan);
  ShardTicket ticket;
  ticket.quotas = &quotas_;
  ticket.tenant = tenant;
  ticket.memory = &memory_;
  ticket.charged_bytes = scratch_bytes;
  return shards_[RouteShard(fingerprint, shards_.size())]->SubmitRouted(
      plan, deadline_ms, fingerprint, ticket);
}

void ShardedServingRuntime::InvalidateCache() {
  for (auto& shard : shards_) shard->InvalidateCache();
}

cost::ServingStats ShardedServingRuntime::StatsSnapshot() const {
  cost::ServingStats merged;
  for (const auto& shard : shards_) merged.MergeFrom(shard->StatsSnapshot());
  merged.limit_rejects += limit_rejects_.load(std::memory_order_relaxed);
  merged.quota_sheds = quotas_.TotalSheds();
  merged.memory_denied = memory_.denied();
  return merged;
}

LatencyHistogram ShardedServingRuntime::LatencySnapshot() const {
  LatencyHistogram merged;
  for (const auto& shard : shards_) merged.Merge(shard->LatencySnapshot());
  return merged;
}

std::vector<TenantCounters> ShardedServingRuntime::TenantSnapshot() const {
  return quotas_.SnapshotAll();
}

MemoryTrackerStats ShardedServingRuntime::MemorySnapshot() const {
  return memory_.Snapshot();
}

Result<std::vector<std::unique_ptr<core::PrestroidPipeline>>>
ShardedServingRuntime::SwapPipelines(
    std::vector<std::unique_ptr<core::PrestroidPipeline>> pipelines,
    bool is_rollback) {
  if (pipelines.size() != shards_.size()) {
    return Status::InvalidArgument(
        "cross-shard swap needs " + std::to_string(shards_.size()) +
        " pipelines (one per shard), got " +
        std::to_string(pipelines.size()));
  }
  // Quiesce the whole tier: every shard's serving lock, acquired in shard
  // order (the only multi-shard lock site, so no deadlock). In-flight
  // batches finish on their old models first; no shard can start a batch
  // until every shard has the new model.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& shard : shards_) locks.push_back(shard->LockServing());
  // One fault-injection check for the whole transaction, before any shard is
  // mutated: an injected crash leaves every shard's model, cache, and
  // generation intact — all-or-nothing.
  if (FaultInjector::Global().ShouldFail(FaultSite::kModelSwap)) {
    return Status::IoError(
        "injected crash mid-swap; previous models left serving on every "
        "shard");
  }
  std::vector<std::unique_ptr<core::PrestroidPipeline>> previous;
  previous.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    previous.push_back(
        shards_[i]->SwapPipelineLocked(std::move(pipelines[i]), is_rollback));
  }
  return previous;
}

}  // namespace prestroid::serve
