#include "serve/model_manager.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/artifact_io.h"
#include "util/logging.h"

namespace prestroid::serve {

const char* ModelLifecycleToString(ModelLifecycle stage) {
  switch (stage) {
    case ModelLifecycle::kCandidate:
      return "CANDIDATE";
    case ModelLifecycle::kShadow:
      return "SHADOW";
    case ModelLifecycle::kActive:
      return "ACTIVE";
    case ModelLifecycle::kRolledBack:
      return "ROLLED_BACK";
    case ModelLifecycle::kRejected:
      return "REJECTED";
  }
  return "?";
}

double QError(double predicted, double actual) {
  if (!std::isfinite(predicted) || !std::isfinite(actual)) {
    return std::numeric_limits<double>::infinity();
  }
  constexpr double kFloor = 1e-6;
  const double p = std::max(std::fabs(predicted), kFloor);
  const double a = std::max(std::fabs(actual), kFloor);
  return std::max(p / a, a / p);
}

DriftDetector::DriftDetector(size_t window)
    : window_(std::max<size_t>(window, 1)), ring_(window_, 0.0) {}

void DriftDetector::Record(double qerror) {
  ring_[next_] = qerror;
  next_ = (next_ + 1) % window_;
  filled_ = std::min(filled_ + 1, window_);
}

double DriftDetector::Percentile(double pct) const {
  if (filled_ == 0) return 1.0;
  std::vector<double> sorted(ring_.begin(),
                             ring_.begin() + static_cast<long>(filled_));
  std::sort(sorted.begin(), sorted.end());
  const double rank = pct / 100.0 * static_cast<double>(filled_);
  size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(std::ceil(rank)) - 1;
  idx = std::min(idx, filled_ - 1);
  return sorted[idx];
}

void DriftDetector::ResetWindow() {
  next_ = 0;
  filled_ = 0;
}

void DriftDetector::SetBaseline(double p50, double p95) {
  baseline_p50_ = p50;
  baseline_p95_ = p95;
  has_baseline_ = true;
}

void DriftDetector::ClearBaseline() {
  baseline_p50_ = 0.0;
  baseline_p95_ = 0.0;
  has_baseline_ = false;
}

ModelManager::ModelManager(ServingHost* host, ModelManagerConfig config)
    : host_(host),
      config_(config),
      drift_(std::max<size_t>(config.drift_window, 1)) {
  PRESTROID_CHECK(host_ != nullptr);
}

void ModelManager::ObserveLabeled(const plan::PlanNode& plan,
                                  double predicted_minutes,
                                  double actual_minutes,
                                  cost::ServingTier tier) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.observations;
  if (tier != cost::ServingTier::kModel) return;
  ++stats_.model_observations;

  const double qerr = QError(predicted_minutes, actual_minutes);
  drift_.Record(qerr);

  replay_.push_back(
      ReplayEntry{plan.Clone(), actual_minutes, predicted_minutes});
  while (replay_.size() > config_.replay_capacity) replay_.pop_front();

  // First full window with no baseline yet: the model's own observed
  // accuracy becomes the reference every later window is judged against.
  if (!drift_.has_baseline() && drift_.WindowFull()) {
    drift_.SetBaseline(drift_.Percentile(50.0), drift_.Percentile(95.0));
  }

  if (in_probation_) {
    ++post_swap_observations_;
    if (post_swap_observations_ >= config_.min_probation &&
        pre_swap_baseline_p95_ > 0.0 &&
        drift_.Percentile(95.0) >
            config_.rollback_qerr * pre_swap_baseline_p95_) {
      const Status rolled = RollbackLocked("post-swap q-error regression");
      if (!rolled.ok()) {
        PRESTROID_LOG(Error) << "automatic rollback failed: "
                             << rolled.ToString();
      }
      return;
    }
    if (post_swap_observations_ >= config_.probation_window) {
      // Probation survived: the new model is confirmed and its observed
      // accuracy becomes the drift baseline going forward.
      in_probation_ = false;
      post_swap_observations_ = 0;
      drift_.SetBaseline(drift_.Percentile(50.0), drift_.Percentile(95.0));
    }
  }

  if (drift_.has_baseline() && drift_.baseline_p95() > 0.0 &&
      drift_.count() >= config_.min_probation &&
      drift_.Percentile(95.0) >
          config_.drift_threshold * drift_.baseline_p95()) {
    ++stats_.drift_flags;
    drift_detected_ = true;
  }
}

bool ModelManager::DriftDetected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_detected_;
}

Result<SwapReport> ModelManager::TryPromote(const std::string& candidate_path) {
  std::lock_guard<std::mutex> lock(mu_);
  SwapReport report;

  // CANDIDATE -> SHADOW gate: the artifact container must checksum-validate
  // and load before the candidate is allowed anywhere near traffic. A
  // corrupt, truncated, or unreadable artifact is a rejection — the active
  // model keeps serving, untouched.
  double candidate_p50 = 0.0;
  Status valid = ValidateArtifactFile(candidate_path);
  if (valid.ok()) {
    auto loaded = core::PrestroidPipeline::LoadFile(candidate_path);
    if (!loaded.ok()) {
      valid = loaded.status();
    } else {
      std::unique_ptr<core::PrestroidPipeline> candidate = std::move(*loaded);

      // SHADOW -> ACTIVE gate: score the candidate on the held-out replay
      // buffer and compare against the q-errors the active model actually
      // achieved on the same plans (recorded at observation time, so the
      // active model is never touched from this thread).
      if (replay_.size() >= config_.min_replay) {
        DriftDetector candidate_err(replay_.size());
        DriftDetector active_err(replay_.size());
        for (const ReplayEntry& entry : replay_) {
          auto pred = candidate->PredictPlan(*entry.plan);
          candidate_err.Record(pred.ok()
                                   ? QError(*pred, entry.actual_minutes)
                                   : std::numeric_limits<double>::infinity());
          active_err.Record(
              QError(entry.active_predicted, entry.actual_minutes));
        }
        candidate_p50 = candidate_err.Percentile(50.0);
        report.candidate_p95 = candidate_err.Percentile(95.0);
        report.active_p95 = active_err.Percentile(95.0);
        report.replay_size = replay_.size();
        if (!std::isfinite(report.candidate_p95) ||
            report.candidate_p95 >
                report.active_p95 * config_.shadow_tolerance) {
          valid = Status::InvalidArgument(
              "shadow validation: candidate q-error p95 " +
              std::to_string(report.candidate_p95) + " vs active " +
              std::to_string(report.active_p95) + " over " +
              std::to_string(replay_.size()) + " replayed plans");
        }
      }
      // else: bootstrap promotion — too little labeled evidence to judge the
      // candidate, so it promotes and the probation window judges it live.

      if (valid.ok()) {
        // One pipeline instance per shard, all from the same validated
        // artifact: instance 0 is the one shadow validation scored; the
        // rest are loaded now so the cross-shard exchange is a pure memory
        // operation. A load failure here is environmental (the artifact
        // already validated) and aborts before any shard is touched.
        std::vector<std::unique_ptr<core::PrestroidPipeline>> candidates;
        candidates.push_back(std::move(candidate));
        for (size_t i = 1; i < host_->ShardCount(); ++i) {
          auto extra = core::PrestroidPipeline::LoadFile(candidate_path);
          if (!extra.ok()) {
            ++stats_.swap_failures;
            return extra.status();
          }
          candidates.push_back(std::move(*extra));
        }
        auto swapped =
            host_->SwapPipelines(std::move(candidates), /*is_rollback=*/false);
        if (!swapped.ok()) {
          ++stats_.swap_failures;
          return swapped.status();
        }
        previous_ = std::move(*swapped);
        pre_swap_baseline_p50_ = drift_.baseline_p50();
        pre_swap_baseline_p95_ = drift_.baseline_p95();
        drift_detected_ = false;
        drift_.ResetWindow();
        if (report.replay_size > 0) {
          // The candidate's replay accuracy is the best available prior for
          // its live baseline; probation then refines it (or rolls back).
          drift_.SetBaseline(candidate_p50, report.candidate_p95);
        } else {
          drift_.ClearBaseline();
        }
        in_probation_ = HasPreviousLocked() && pre_swap_baseline_p95_ > 0.0;
        post_swap_observations_ = 0;
        ++stats_.swaps;
        ++stats_.active_version;
        report.outcome = ModelLifecycle::kActive;
        report.version = stats_.active_version;
        return report;
      }
    }
  }

  ++stats_.rejected_candidates;
  report.outcome = ModelLifecycle::kRejected;
  report.detail = valid;
  report.version = stats_.active_version;
  return report;
}

Status ModelManager::Rollback(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  return RollbackLocked(reason);
}

Status ModelManager::RollbackLocked(const std::string& reason) {
  if (!HasPreviousLocked()) {
    return Status::InvalidArgument("no previous model retained for rollback (" +
                                   reason + ")");
  }
  auto swapped =
      host_->SwapPipelines(std::move(previous_), /*is_rollback=*/true);
  previous_.clear();
  if (!swapped.ok()) {
    ++stats_.swap_failures;
    return swapped.status();
  }
  // The demoted models are discarded — re-promoting a model that just failed
  // probation would need fresh evidence (a new candidate artifact) anyway.
  in_probation_ = false;
  post_swap_observations_ = 0;
  drift_.ResetWindow();
  if (pre_swap_baseline_p95_ > 0.0) {
    drift_.SetBaseline(pre_swap_baseline_p50_, pre_swap_baseline_p95_);
  } else {
    drift_.ClearBaseline();
  }
  ++stats_.rollbacks;
  PRESTROID_LOG(Warning) << "model rolled back: " << reason;
  return Status::OK();
}

ModelManagerStats ModelManager::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  ModelManagerStats out = stats_;
  out.qerr_p50 = drift_.Percentile(50.0);
  out.qerr_p95 = drift_.Percentile(95.0);
  out.baseline_p50 = drift_.baseline_p50();
  out.baseline_p95 = drift_.baseline_p95();
  out.in_probation = in_probation_;
  out.drift_detected = drift_detected_;
  return out;
}

cost::ServingStats ModelManager::MergedStats() const {
  // Lock-order discipline: the host snapshot takes each shard's
  // serve_mu_/queue_mu_, and promotion paths hold mu_ -> serve locks — so
  // take the host snapshot BEFORE locking mu_.
  cost::ServingStats stats = host_->StatsSnapshot();
  std::lock_guard<std::mutex> lock(mu_);
  stats.rejected_candidates = stats_.rejected_candidates;
  stats.drift_flags = stats_.drift_flags;
  stats.drift_qerr_p50 = drift_.Percentile(50.0);
  stats.drift_qerr_p95 = drift_.Percentile(95.0);
  stats.drift_baseline_p95 = drift_.baseline_p95();
  return stats;
}

}  // namespace prestroid::serve
