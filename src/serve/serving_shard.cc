#include "serve/serving_shard.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "plan/plan_limits.h"
#include "plan/plan_stats.h"
#include "serve/plan_fingerprint.h"
#include "util/fault_injection.h"

namespace prestroid::serve {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

ServingShard::ServingShard(cost::ServingEstimator* estimator,
                           ServingRuntimeConfig config, MemoryTracker* memory)
    : estimator_(estimator),
      config_(config),
      memory_(memory),
      cache_(config.cache_entries),
      arena_(memory) {
  if (config_.max_batch == 0) config_.max_batch = 1;
  if (config_.queue_depth == 0) config_.queue_depth = 1;
}

ServingShard::~ServingShard() { Shutdown(); }

Status ServingShard::Start() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (started_) {
      return Status::AlreadyExists("serving shard already started");
    }
    // Reopen admission after a prior Shutdown() and reset the watermark so a
    // restarted shard reports this run's peak, not its predecessor's.
    stop_ = false;
    started_ = true;
    queue_high_watermark_ = 0;
  }
  {
    // Freeze the attached pipeline at the configured serving precision
    // before the worker can run a batch. Failure degrades to fp32 (counted)
    // rather than failing Start — the shard must serve regardless.
    std::lock_guard<std::mutex> serve_lock(serve_mu_);
    ApplyPrecisionLocked();
  }
  worker_ = std::thread([this] { WorkerLoop(); });
  return Status::OK();
}

void ServingShard::Shutdown() {
  std::vector<PendingRequest> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
    if (!started_) {
      // Never started: the calling thread drains, so accepted futures still
      // resolve (the deterministic path the overflow tests rely on).
      while (!queue_.empty()) {
        leftover.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  {
    // The worker is gone and stop_ still rejects submissions; clearing
    // started_ makes the shard restartable via a later Start().
    std::lock_guard<std::mutex> lock(queue_mu_);
    started_ = false;
  }
  for (size_t begin = 0; begin < leftover.size(); begin += config_.max_batch) {
    const size_t end = std::min(begin + config_.max_batch, leftover.size());
    std::vector<PendingRequest> batch;
    batch.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      batch.push_back(std::move(leftover[i]));
    }
    std::lock_guard<std::mutex> serve_lock(serve_mu_);
    ServeBatch(batch);
  }
}

Result<std::future<cost::ServingEstimate>> ServingShard::Submit(
    const plan::PlanNode& plan, double deadline_ms) {
  // Governor check before anything touches the plan: a rejected plan is
  // never fingerprinted, featurized, or queued. The walk is checked outside
  // the queue lock — it early-exits at the limit, so its cost is bounded by
  // the limits themselves, not by the hostile plan's size.
  Status within_limits = plan::CheckPlanLimits(plan, config_.plan_limits);
  if (!within_limits.ok()) {
    std::lock_guard<std::mutex> lock(queue_mu_);
    ++limit_rejects_;
    return Status::InvalidArgument("plan rejected by resource governor: " +
                                   within_limits.message());
  }
  return Enqueue(plan, deadline_ms, /*fingerprint=*/0,
                 /*has_fingerprint=*/false, ShardTicket{});
}

Result<std::future<cost::ServingEstimate>> ServingShard::SubmitRouted(
    const plan::PlanNode& plan, double deadline_ms, uint64_t fingerprint,
    ShardTicket ticket) {
  // The facade already ran the governor (before fingerprinting — the PR5
  // invariant) and charged the ticket; this path must not double-count.
  return Enqueue(plan, deadline_ms, fingerprint, /*has_fingerprint=*/true,
                 ticket);
}

Result<std::future<cost::ServingEstimate>> ServingShard::Enqueue(
    const plan::PlanNode& plan, double deadline_ms, uint64_t fingerprint,
    bool has_fingerprint, ShardTicket ticket) {
  std::future<cost::ServingEstimate> future;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_) {
      ticket.Release();
      return Status::InvalidArgument("serving shard is shut down");
    }
    if (queue_.size() >= config_.queue_depth) {
      ++rejected_requests_;
      ticket.Release();
      return Status::ResourceExhausted(
          "serving queue is full (depth " +
          std::to_string(config_.queue_depth) + ")");
    }
    PendingRequest request;
    request.plan = &plan;
    request.deadline_ms = deadline_ms;
    request.enqueue_time = std::chrono::steady_clock::now();
    request.fingerprint = fingerprint;
    request.has_fingerprint = has_fingerprint;
    request.ticket = ticket;
    future = request.promise.get_future();
    queue_.push_back(std::move(request));
    queue_high_watermark_ = std::max(queue_high_watermark_, queue_.size());
  }
  queue_cv_.notify_one();
  return future;
}

Result<cost::ServingEstimate> ServingShard::EstimateBlocking(
    const plan::PlanNode& plan, double deadline_ms) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!started_ && !stop_) {
      // No worker will ever drain the queue: blocking here would park the
      // caller forever once the queue fills. Fail fast instead.
      return Status::FailedPrecondition(
          "EstimateBlocking requires a running worker: call Start() first");
    }
  }
  // The blocking wrapper never sheds, so a governor reject degrades through
  // the estimator's fallback chain instead of surfacing a status.
  Status within_limits = plan::CheckPlanLimits(plan, config_.plan_limits);
  if (!within_limits.ok()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      ++limit_rejects_;
    }
    std::lock_guard<std::mutex> serve_lock(serve_mu_);
    estimator_->CountRequest();
    const plan::PlanStats stats = plan::ComputePlanStats(plan);
    return estimator_->EstimateFallback(stats, std::move(within_limits),
                                        std::chrono::steady_clock::now());
  }
  std::future<cost::ServingEstimate> future;
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    space_cv_.wait(lock, [this] {
      return stop_ || queue_.size() < config_.queue_depth;
    });
    if (stop_) {
      // The worker is gone (or going), so serving inline is race-free.
      lock.unlock();
      std::lock_guard<std::mutex> serve_lock(serve_mu_);
      return estimator_->EstimateWithFallback(plan, deadline_ms);
    }
    PendingRequest request;
    request.plan = &plan;
    request.deadline_ms = deadline_ms;
    request.enqueue_time = std::chrono::steady_clock::now();
    future = request.promise.get_future();
    queue_.push_back(std::move(request));
    queue_high_watermark_ = std::max(queue_high_watermark_, queue_.size());
  }
  queue_cv_.notify_one();
  return future.get();
}

void ServingShard::InvalidateCache() {
  std::lock_guard<std::mutex> lock(serve_mu_);
  ++cache_generation_;
  cache_.Clear();
}

Result<std::unique_ptr<core::PrestroidPipeline>> ServingShard::SwapPipeline(
    std::unique_ptr<core::PrestroidPipeline> pipeline, bool is_rollback) {
  // serve_mu_ serializes against the batch worker: an in-flight batch
  // finishes on the old model before the exchange below, and the next batch
  // can only observe the fully swapped state (new pipeline + new cache
  // generation). The admission queue is untouched, so no request is dropped.
  std::lock_guard<std::mutex> lock(serve_mu_);
  if (FaultInjector::Global().ShouldFail(FaultSite::kModelSwap)) {
    return Status::IoError(
        "injected crash mid-swap; previous model left serving");
  }
  return SwapPipelineLocked(std::move(pipeline), is_rollback);
}

std::unique_ptr<core::PrestroidPipeline> ServingShard::SwapPipelineLocked(
    std::unique_ptr<core::PrestroidPipeline> pipeline, bool is_rollback) {
  std::unique_ptr<core::PrestroidPipeline> previous =
      estimator_->ReleasePipeline();
  estimator_->AttachPipeline(std::move(pipeline));
  estimator_->ResetModelLatency();
  ++cache_generation_;
  cache_.Clear();
  if (is_rollback) {
    ++model_rollbacks_;
  } else {
    ++model_swaps_;
  }
  // The incoming pipeline arrives fp32 (swap candidates are validated at
  // fp32); re-freeze it at the shard's configured precision so a hot-swap
  // never silently downgrades a quantized deployment.
  ApplyPrecisionLocked();
  return previous;
}

void ServingShard::ApplyPrecisionLocked() {
  if (memory_ != nullptr && resident_charged_bytes_ > 0) {
    memory_->Release(resident_charged_bytes_);
    resident_charged_bytes_ = 0;
  }
  active_precision_ = Precision::kFp32;
  resident_weight_bytes_ = 0;
  core::PrestroidPipeline* pipeline = estimator_->pipeline();
  if (pipeline == nullptr) return;
  if (config_.precision == Precision::kFp32) {
    // Make the exact historical path explicit: clear any resident state a
    // previous owner of this pipeline may have left behind. Clearing to
    // fp32 cannot fail.
    pipeline->SetInferencePrecision(Precision::kFp32, nullptr);
    resident_weight_bytes_ = pipeline->InferenceWeightBytes();
    return;
  }
  Status frozen = pipeline->SetInferencePrecision(config_.precision,
                                                  config_.quant_profile.get());
  if (!frozen.ok()) {
    // SetInferencePrecision leaves the pipeline fp32 on failure; serve that.
    ++precision_fallbacks_;
    resident_weight_bytes_ = pipeline->InferenceWeightBytes();
    return;
  }
  active_precision_ = config_.precision;
  resident_weight_bytes_ = pipeline->InferenceWeightBytes();
  if (memory_ != nullptr && resident_weight_bytes_ > 0) {
    // Unconditional charge: the weights are already resident — this records
    // the footprint for the box-level budget rather than gating it.
    memory_->Charge(resident_weight_bytes_);
    resident_charged_bytes_ = resident_weight_bytes_;
  }
}

cost::ServingStats ServingShard::StatsSnapshot() const {
  cost::ServingStats stats;
  {
    std::lock_guard<std::mutex> lock(serve_mu_);
    stats = estimator_->stats();
    stats.cache_hits = cache_.stats().hits;
    stats.cache_misses = cache_.stats().misses;
    stats.cache_evictions = cache_.stats().evictions;
    stats.model_swaps = model_swaps_;
    stats.model_rollbacks = model_rollbacks_;
    stats.quantized_batches = quantized_batches_;
    stats.precision_fallbacks = precision_fallbacks_;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stats.rejected_requests = rejected_requests_;
    stats.limit_rejects = limit_rejects_;
    stats.queue_high_watermark = queue_high_watermark_;
  }
  return stats;
}

LatencyHistogram ServingShard::LatencySnapshot() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return latency_hist_;
}

size_t ServingShard::arena_peak_bytes() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return arena_.peak_used_bytes();
}

size_t ServingShard::arena_capacity_bytes() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return arena_.capacity_bytes();
}

Precision ServingShard::active_precision() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return active_precision_;
}

size_t ServingShard::resident_weight_bytes() const {
  std::lock_guard<std::mutex> lock(serve_mu_);
  return resident_weight_bytes_;
}

void ServingShard::WorkerLoop() {
  while (true) {
    std::vector<PendingRequest> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;  // drained and told to stop
        continue;
      }
      // Batch window: give the batch a chance to fill before running a
      // partial one. Skipped once stopping — drain as fast as possible.
      if (!stop_ && config_.batch_window_us > 0 &&
          queue_.size() < config_.max_batch) {
        const auto until = std::chrono::steady_clock::now() +
                           std::chrono::microseconds(config_.batch_window_us);
        queue_cv_.wait_until(lock, until, [this] {
          return stop_ || queue_.size() >= config_.max_batch;
        });
      }
      const size_t take = std::min(queue_.size(), config_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    space_cv_.notify_all();
    std::lock_guard<std::mutex> serve_lock(serve_mu_);
    ServeBatch(batch);
  }
}

void ServingShard::ServeBatch(std::vector<PendingRequest>& batch) {
  // Precondition: serve_mu_ held by the caller (worker loop or Shutdown).
  core::PrestroidPipeline* pipeline = estimator_->pipeline();

  auto resolve = [this, &batch](size_t i, cost::ServingEstimate estimate) {
    latency_hist_.Record(estimate.latency_ms);
    // Quota slot and memory charge free as the caller unblocks — every
    // resolution path funnels through here, so the release is exactly-once.
    batch[i].ticket.Release();
    batch[i].promise.set_value(std::move(estimate));
  };

  // max_batch == 1 preserves the legacy single-query serving path verbatim:
  // per-request recast + featurize through EstimateWithFallback, no
  // fingerprint cache, no fused staging. This keeps the degenerate
  // configuration bit-compatible with pre-runtime serving and makes the
  // batch-size sweep in bench/serving_throughput a true before/after
  // comparison. Caching and batch fusion engage for max_batch >= 2.
  if (config_.max_batch == 1) {
    for (size_t i = 0; i < batch.size(); ++i) {
      PendingRequest& request = batch[i];
      const double deadline = request.deadline_ms > 0.0
                                  ? request.deadline_ms
                                  : estimator_->limits().default_deadline_ms;
      const double remaining = deadline - ElapsedMs(request.enqueue_time);
      cost::ServingEstimate estimate;
      if (remaining <= 0.0) {
        // Expired while queued: EstimateWithFallback would read a
        // non-positive deadline as "use the default", so degrade explicitly.
        estimator_->CountRequest();
        const plan::PlanStats stats = plan::ComputePlanStats(*request.plan);
        Status expired = estimator_->AdmitModelTier(stats, remaining);
        estimate = estimator_->EstimateFallback(stats, std::move(expired),
                                                request.enqueue_time);
      } else {
        estimate = estimator_->EstimateWithFallback(*request.plan, remaining);
        estimate.latency_ms = ElapsedMs(request.enqueue_time);
        if (estimate.tier == cost::ServingTier::kModel &&
            active_precision_ != Precision::kFp32) {
          ++quantized_batches_;  // per model answer on the unfused path
        }
      }
      resolve(i, std::move(estimate));
    }
    return;
  }

  // Trivially-destructible staging arrays live in the per-batch scratch
  // arena (rewound, not freed, between batches); the feature handles keep
  // their shared_ptr lifetimes in a normal vector.
  arena_.Reset();
  double* remaining_ms = arena_.AllocateArray<double>(batch.size());
  size_t* admitted_index = arena_.AllocateArray<size_t>(batch.size());
  const core::PlanFeatures** feature_ptrs =
      arena_.AllocateArray<const core::PlanFeatures*>(batch.size());
  size_t admitted = 0;
  std::vector<std::shared_ptr<const core::PlanFeatures>> feature_handles;
  feature_handles.reserve(batch.size());
  std::vector<plan::PlanStats> plan_stats(batch.size());

  for (size_t i = 0; i < batch.size(); ++i) {
    PendingRequest& request = batch[i];
    estimator_->CountRequest();
    const double deadline = request.deadline_ms > 0.0
                                ? request.deadline_ms
                                : estimator_->limits().default_deadline_ms;
    remaining_ms[i] = deadline - ElapsedMs(request.enqueue_time);
    plan_stats[i] = plan::ComputePlanStats(*request.plan);

    Status admit = estimator_->AdmitModelTier(plan_stats[i], remaining_ms[i]);
    if (!admit.ok()) {
      resolve(i, estimator_->EstimateFallback(plan_stats[i], std::move(admit),
                                              request.enqueue_time));
      continue;
    }
    // Routed requests carry the facade's fingerprint (identical plans land
    // on the same shard, so reusing it keeps the cache key stable across the
    // tier); direct submissions hash here.
    const uint64_t plan_fp = request.has_fingerprint
                                 ? request.fingerprint
                                 : FingerprintPlan(*request.plan);
    const uint64_t key = CombineFingerprint(plan_fp, cache_generation_);
    std::shared_ptr<const core::PlanFeatures> features = cache_.Lookup(key);
    if (features == nullptr) {
      Result<core::PlanFeatures> fresh = pipeline->FeaturizePlan(*request.plan);
      if (!fresh.ok()) {
        estimator_->NoteModelFailure();
        resolve(i, estimator_->EstimateFallback(
                       plan_stats[i], fresh.status(), request.enqueue_time));
        continue;
      }
      features = std::make_shared<core::PlanFeatures>(std::move(*fresh));
      cache_.Insert(key, features);
    }
    admitted_index[admitted] = i;
    feature_ptrs[admitted] = features.get();
    feature_handles.push_back(std::move(features));
    ++admitted;
  }

  if (admitted == 0) return;

  // One fused eval-mode forward pass for every admitted request.
  if (active_precision_ != Precision::kFp32) ++quantized_batches_;
  const auto forward_start = std::chrono::steady_clock::now();
  const std::vector<double> predicted = pipeline->PredictFeaturized(
      std::vector<const core::PlanFeatures*>(feature_ptrs,
                                             feature_ptrs + admitted));
  const double per_item_ms =
      ElapsedMs(forward_start) / static_cast<double>(admitted);

  for (size_t j = 0; j < admitted; ++j) {
    const size_t i = admitted_index[j];
    estimator_->UpdateModelLatency(per_item_ms, remaining_ms[i]);
    if (std::isfinite(predicted[j])) {
      resolve(i, estimator_->FinishModelEstimate(
                     predicted[j], ElapsedMs(batch[i].enqueue_time)));
    } else {
      estimator_->NoteModelFailure();
      resolve(i, estimator_->EstimateFallback(
                     plan_stats[i],
                     Status::Internal("model returned a non-finite estimate"),
                     batch[i].enqueue_time));
    }
  }
}

}  // namespace prestroid::serve
