#ifndef PRESTROID_SERVE_PLAN_CACHE_H_
#define PRESTROID_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "core/pipeline.h"

namespace prestroid::serve {

/// Monotonic cache counters, merged into ServingStats snapshots.
struct PlanCacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
};

/// LRU cache from plan fingerprint to featurized encoding. A hit skips the
/// whole recast + OOV-context + encode + sub-tree-sampling path, which
/// dominates per-request cost for recurring workloads. Entries are handed
/// out as shared_ptr<const ...> so an encoding stays valid while a batch is
/// using it even if it gets evicted mid-flight.
///
/// Not thread-safe: the serving runtime confines all access to its batch
/// worker thread.
class PlanFeatureCache {
 public:
  /// capacity == 0 disables caching (every Lookup misses, Insert is a no-op).
  explicit PlanFeatureCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached encoding and refreshes recency, or nullptr on miss.
  /// Counts a hit or miss either way.
  std::shared_ptr<const core::PlanFeatures> Lookup(uint64_t key);

  /// Inserts (or replaces) the encoding for `key`, evicting the least
  /// recently used entry when full.
  void Insert(uint64_t key, std::shared_ptr<const core::PlanFeatures> features);

  /// Drops every entry. Counters are monotonic and survive the clear.
  void Clear();

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  const PlanCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    uint64_t key;
    std::shared_ptr<const core::PlanFeatures> features;
  };

  size_t capacity_;
  /// Recency list, most recent at the front; the map points into it.
  std::list<Entry> lru_;
  std::unordered_map<uint64_t, std::list<Entry>::iterator> entries_;
  PlanCacheStats stats_;
};

}  // namespace prestroid::serve

#endif  // PRESTROID_SERVE_PLAN_CACHE_H_
