#include "workload/schema_generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::workload {

namespace {

using plan::ColumnDef;
using plan::ColumnType;
using plan::TableDef;

/// Thematic column-name vocabulary. Names within a theme co-occur inside the
/// same tables, which gives the predicate Word2Vec model real structure to
/// learn (e.g. longitude/latitude vs. datamart_key).
struct Theme {
  const char* name;
  std::vector<std::pair<const char*, ColumnType>> columns;
};

const std::vector<Theme>& Themes() {
  static const std::vector<Theme>* kThemes = new std::vector<Theme>{
      {"geo",
       {{"longitude", ColumnType::kDouble},
        {"latitude", ColumnType::kDouble},
        {"geohash", ColumnType::kString},
        {"city_id", ColumnType::kInt},
        {"country_code", ColumnType::kString},
        {"region", ColumnType::kString}}},
      {"time",
       {{"event_ts", ColumnType::kTimestamp},
        {"created_at", ColumnType::kTimestamp},
        {"updated_at", ColumnType::kTimestamp},
        {"ds", ColumnType::kString},
        {"hour_of_day", ColumnType::kInt},
        {"day_of_week", ColumnType::kInt}}},
      {"money",
       {{"fare", ColumnType::kDouble},
        {"amount", ColumnType::kDouble},
        {"tax", ColumnType::kDouble},
        {"discount", ColumnType::kDouble},
        {"currency", ColumnType::kString},
        {"commission", ColumnType::kDouble}}},
      {"ids",
       {{"driver_id", ColumnType::kInt},
        {"passenger_id", ColumnType::kInt},
        {"order_id", ColumnType::kInt},
        {"merchant_id", ColumnType::kInt},
        {"booking_id", ColumnType::kInt},
        {"vehicle_id", ColumnType::kInt}}},
      {"metrics",
       {{"distance_km", ColumnType::kDouble},
        {"duration_s", ColumnType::kDouble},
        {"rating", ColumnType::kDouble},
        {"eta_min", ColumnType::kDouble},
        {"surge_factor", ColumnType::kDouble},
        {"num_stops", ColumnType::kInt}}},
      {"status",
       {{"status", ColumnType::kString},
        {"state", ColumnType::kString},
        {"type", ColumnType::kString},
        {"source", ColumnType::kString},
        {"flag", ColumnType::kInt},
        {"datamart_key", ColumnType::kString}}},
  };
  return *kThemes;
}

ColumnDef MakeColumn(const char* name, ColumnType type, Rng* rng) {
  ColumnDef col;
  col.name = name;
  col.type = type;
  switch (type) {
    case ColumnType::kInt:
      col.num_distinct = std::max(2.0, rng->LogNormal(8.0, 2.0));
      col.min_value = 0.0;
      col.max_value = col.num_distinct * rng->Uniform(1.0, 4.0);
      break;
    case ColumnType::kDouble:
      col.num_distinct = std::max(10.0, rng->LogNormal(10.0, 2.0));
      col.min_value = rng->Uniform(-200.0, 0.0);
      col.max_value = col.min_value + rng->LogNormal(5.0, 1.5);
      break;
    case ColumnType::kString:
      col.num_distinct = std::max(2.0, rng->LogNormal(4.0, 1.5));
      col.min_value = 0.0;
      col.max_value = col.num_distinct;
      break;
    case ColumnType::kTimestamp:
      col.num_distinct = std::max(100.0, rng->LogNormal(12.0, 1.0));
      col.min_value = 1.6e9;  // epoch seconds
      col.max_value = 1.7e9;
      break;
  }
  return col;
}

const char* const kTableWords[] = {
    "trips",   "orders",   "payments", "drivers",  "sessions", "events",
    "bookings", "merchants", "ratings", "incentives", "wallets", "campaigns",
    "deliveries", "routes", "fares",   "promos",   "refunds",  "vehicles",
    "zones",   "surge",    "eta",      "logs",     "snapshots", "metrics",
};

}  // namespace

std::vector<std::string> GeneratedSchema::TablesAvailableAt(int day) const {
  std::vector<std::string> out;
  for (size_t i = 0; i < table_names.size(); ++i) {
    if (creation_day[i] <= day) out.push_back(table_names[i]);
  }
  return out;
}

GeneratedSchema GenerateSchema(const SchemaGenConfig& config) {
  PRESTROID_CHECK_GE(config.max_columns, config.min_columns);
  Rng rng(config.seed);
  GeneratedSchema schema;

  const auto& themes = Themes();
  const size_t num_words = sizeof(kTableWords) / sizeof(kTableWords[0]);

  for (size_t t = 0; t < config.num_tables; ++t) {
    TableDef table;
    table.name = StrFormat("%s_%zu", kTableWords[rng.NextUint64(num_words)], t);
    table.row_count = std::max(
        100.0, rng.LogNormal(config.row_count_log_mu, config.row_count_log_sigma));
    table.row_bytes = rng.Uniform(48.0, 512.0);

    // Pick 2-3 themes; draw columns mostly from them so theme words co-occur.
    size_t num_themes = 2 + rng.NextUint64(2);
    std::vector<size_t> theme_ids;
    while (theme_ids.size() < num_themes) {
      size_t id = rng.NextUint64(themes.size());
      if (std::find(theme_ids.begin(), theme_ids.end(), id) == theme_ids.end()) {
        theme_ids.push_back(id);
      }
    }
    size_t num_cols = config.min_columns +
                      rng.NextUint64(config.max_columns - config.min_columns + 1);
    std::vector<std::string> used;
    // Every table gets at least one join-key id column.
    {
      const Theme& ids = themes[3];
      auto [name, type] = ids.columns[rng.NextUint64(ids.columns.size())];
      table.columns.push_back(MakeColumn(name, type, &rng));
      used.emplace_back(name);
    }
    size_t guard = 0;
    while (table.columns.size() < num_cols && guard++ < 400) {
      const Theme& theme = themes[theme_ids[rng.NextUint64(theme_ids.size())]];
      auto [name, type] = theme.columns[rng.NextUint64(theme.columns.size())];
      if (std::find(used.begin(), used.end(), name) != used.end()) {
        // Duplicate within the table: derive a suffixed variant.
        std::string variant = StrFormat("%s_%zu", name, rng.NextUint64(9) + 2);
        if (std::find(used.begin(), used.end(), variant) != used.end()) continue;
        ColumnDef col = MakeColumn(name, type, &rng);
        col.name = variant;
        table.columns.push_back(std::move(col));
        used.push_back(std::move(variant));
      } else {
        table.columns.push_back(MakeColumn(name, type, &rng));
        used.emplace_back(name);
      }
    }

    int created = 0;
    if (!rng.Bernoulli(config.initial_fraction)) {
      created = static_cast<int>(rng.NextUint64(
          static_cast<uint64_t>(std::max(1, config.num_days))));
    }
    schema.creation_day.push_back(created);
    schema.table_names.push_back(table.name);
    PRESTROID_CHECK(schema.catalog.AddTable(std::move(table)).ok());
  }
  return schema;
}

GeneratedSchema GenerateTpcdsSchema(double scale_factor) {
  Rng rng(4242);
  GeneratedSchema schema;

  struct Spec {
    const char* name;
    double rows_at_sf1;
    std::vector<const char*> int_cols;
    std::vector<const char*> num_cols;
    std::vector<const char*> str_cols;
  };
  // Standard TPC-DS table names with representative column subsets; fact
  // tables scale with SF, dimensions stay near-constant.
  const std::vector<Spec> specs = {
      {"store_sales", 2.88e6,
       {"ss_sold_date_sk", "ss_item_sk", "ss_customer_sk", "ss_store_sk",
        "ss_ticket_number", "ss_quantity"},
       {"ss_sales_price", "ss_ext_discount_amt", "ss_net_profit",
        "ss_wholesale_cost", "ss_list_price"},
       {}},
      {"store_returns", 2.88e5,
       {"sr_returned_date_sk", "sr_item_sk", "sr_customer_sk", "sr_ticket_number"},
       {"sr_return_amt", "sr_fee", "sr_net_loss"},
       {}},
      {"catalog_sales", 1.44e6,
       {"cs_sold_date_sk", "cs_item_sk", "cs_bill_customer_sk", "cs_order_number",
        "cs_quantity"},
       {"cs_sales_price", "cs_ext_ship_cost", "cs_net_profit", "cs_list_price"},
       {}},
      {"catalog_returns", 1.44e5,
       {"cr_returned_date_sk", "cr_item_sk", "cr_order_number"},
       {"cr_return_amount", "cr_net_loss"},
       {}},
      {"web_sales", 7.2e5,
       {"ws_sold_date_sk", "ws_item_sk", "ws_bill_customer_sk", "ws_order_number",
        "ws_quantity"},
       {"ws_sales_price", "ws_ext_ship_cost", "ws_net_profit"},
       {}},
      {"web_returns", 7.2e4,
       {"wr_returned_date_sk", "wr_item_sk", "wr_order_number"},
       {"wr_return_amt", "wr_net_loss"},
       {}},
      {"inventory", 1.17e7,
       {"inv_date_sk", "inv_item_sk", "inv_warehouse_sk", "inv_quantity_on_hand"},
       {},
       {}},
      {"date_dim", 7.3e4,
       {"d_date_sk", "d_year", "d_moy", "d_dom", "d_qoy", "d_dow"},
       {},
       {"d_day_name", "d_date"}},
      {"time_dim", 8.64e4, {"t_time_sk", "t_hour", "t_minute"}, {}, {"t_shift"}},
      {"item", 1.8e4,
       {"i_item_sk", "i_manufact_id", "i_brand_id", "i_class_id", "i_category_id"},
       {"i_current_price", "i_wholesale_cost"},
       {"i_item_id", "i_brand", "i_class", "i_category", "i_color", "i_size"}},
      {"customer", 1e5,
       {"c_customer_sk", "c_current_cdemo_sk", "c_current_addr_sk",
        "c_birth_year", "c_birth_month"},
       {},
       {"c_customer_id", "c_first_name", "c_last_name", "c_email_address"}},
      {"customer_address", 5e4,
       {"ca_address_sk", "ca_gmt_offset"},
       {},
       {"ca_city", "ca_county", "ca_state", "ca_zip", "ca_country"}},
      {"customer_demographics", 1.92e6,
       {"cd_demo_sk", "cd_purchase_estimate", "cd_dep_count"},
       {},
       {"cd_gender", "cd_marital_status", "cd_education_status",
        "cd_credit_rating"}},
      {"household_demographics", 7.2e3,
       {"hd_demo_sk", "hd_income_band_sk", "hd_dep_count", "hd_vehicle_count"},
       {},
       {"hd_buy_potential"}},
      {"income_band", 20, {"ib_income_band_sk", "ib_lower_bound", "ib_upper_bound"},
       {}, {}},
      {"store", 12,
       {"s_store_sk", "s_number_employees", "s_floor_space"},
       {"s_tax_precentage"},
       {"s_store_id", "s_store_name", "s_city", "s_state", "s_market_manager"}},
      {"call_center", 6,
       {"cc_call_center_sk", "cc_employees"},
       {"cc_tax_percentage"},
       {"cc_call_center_id", "cc_name", "cc_manager", "cc_city"}},
      {"catalog_page", 1.17e4, {"cp_catalog_page_sk", "cp_catalog_number"},
       {}, {"cp_catalog_page_id", "cp_department", "cp_type"}},
      {"web_site", 30, {"web_site_sk", "web_open_date_sk"},
       {"web_tax_percentage"}, {"web_site_id", "web_name", "web_manager"}},
      {"web_page", 60, {"wp_web_page_sk", "wp_char_count", "wp_link_count"},
       {}, {"wp_web_page_id", "wp_type"}},
      {"warehouse", 5, {"w_warehouse_sk", "w_warehouse_sq_ft"}, {},
       {"w_warehouse_id", "w_warehouse_name", "w_city", "w_state"}},
      {"promotion", 300, {"p_promo_sk", "p_start_date_sk", "p_end_date_sk"},
       {"p_cost"}, {"p_promo_id", "p_promo_name", "p_channel_email"}},
      {"reason", 35, {"r_reason_sk"}, {}, {"r_reason_id", "r_reason_desc"}},
      {"ship_mode", 20, {"sm_ship_mode_sk"}, {},
       {"sm_ship_mode_id", "sm_type", "sm_code", "sm_carrier"}},
  };

  for (const Spec& spec : specs) {
    TableDef table;
    table.name = spec.name;
    // Fact tables (large at SF1) scale with the factor; dimensions do not.
    const bool is_fact = spec.rows_at_sf1 >= 1e5;
    table.row_count = spec.rows_at_sf1 * (is_fact ? scale_factor : 1.0);
    table.row_bytes = rng.Uniform(64.0, 220.0);
    for (const char* col : spec.int_cols) {
      table.columns.push_back(MakeColumn(col, ColumnType::kInt, &rng));
    }
    for (const char* col : spec.num_cols) {
      table.columns.push_back(MakeColumn(col, ColumnType::kDouble, &rng));
    }
    for (const char* col : spec.str_cols) {
      table.columns.push_back(MakeColumn(col, ColumnType::kString, &rng));
    }
    schema.table_names.push_back(table.name);
    schema.creation_day.push_back(0);
    PRESTROID_CHECK(schema.catalog.AddTable(std::move(table)).ok());
  }
  return schema;
}

GeneratedSchema GenerateTpchSchema(double scale_factor) {
  Rng rng(2424);
  GeneratedSchema schema;

  struct Spec {
    const char* name;
    double rows_at_sf1;
    bool scales;
    std::vector<const char*> int_cols;
    std::vector<const char*> num_cols;
    std::vector<const char*> str_cols;
  };
  const std::vector<Spec> specs = {
      {"lineitem", 6.0e6, true,
       {"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity"},
       {"l_extendedprice", "l_discount", "l_tax"},
       {"l_returnflag", "l_linestatus", "l_shipdate", "l_shipmode",
        "l_comment"}},
      {"orders", 1.5e6, true,
       {"o_orderkey", "o_custkey", "o_shippriority"},
       {"o_totalprice"},
       {"o_orderstatus", "o_orderdate", "o_orderpriority", "o_clerk"}},
      {"customer", 1.5e5, true,
       {"c_custkey", "c_nationkey"},
       {"c_acctbal"},
       {"c_name", "c_address", "c_phone", "c_mktsegment"}},
      {"part", 2.0e5, true,
       {"p_partkey", "p_size"},
       {"p_retailprice"},
       {"p_name", "p_mfgr", "p_brand", "p_type", "p_container"}},
      {"supplier", 1.0e4, true,
       {"s_suppkey", "s_nationkey"},
       {"s_acctbal"},
       {"s_name", "s_address", "s_phone"}},
      {"partsupp", 8.0e5, true,
       {"ps_partkey", "ps_suppkey", "ps_availqty"},
       {"ps_supplycost"},
       {}},
      {"nation", 25, false, {"n_nationkey", "n_regionkey"}, {}, {"n_name"}},
      {"region", 5, false, {"r_regionkey"}, {}, {"r_name"}},
  };
  for (const Spec& spec : specs) {
    TableDef table;
    table.name = spec.name;
    table.row_count = spec.rows_at_sf1 * (spec.scales ? scale_factor : 1.0);
    table.row_bytes = rng.Uniform(72.0, 200.0);
    for (const char* col : spec.int_cols) {
      table.columns.push_back(MakeColumn(col, ColumnType::kInt, &rng));
    }
    for (const char* col : spec.num_cols) {
      table.columns.push_back(MakeColumn(col, ColumnType::kDouble, &rng));
    }
    for (const char* col : spec.str_cols) {
      table.columns.push_back(MakeColumn(col, ColumnType::kString, &rng));
    }
    schema.table_names.push_back(table.name);
    schema.creation_day.push_back(0);
    PRESTROID_CHECK(schema.catalog.AddTable(std::move(table)).ok());
  }
  return schema;
}

}  // namespace prestroid::workload
