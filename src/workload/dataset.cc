#include "workload/dataset.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace prestroid::workload {

DatasetSplits SplitRandom(size_t num_records, double train_ratio,
                          double val_ratio, Rng* rng) {
  PRESTROID_CHECK(rng != nullptr);
  PRESTROID_CHECK_LE(train_ratio + val_ratio, 1.0 + 1e-9);
  std::vector<size_t> order(num_records);
  for (size_t i = 0; i < num_records; ++i) order[i] = i;
  rng->Shuffle(&order);
  DatasetSplits splits;
  const size_t train_end = static_cast<size_t>(
      static_cast<double>(num_records) * train_ratio);
  const size_t val_end = train_end + static_cast<size_t>(
      static_cast<double>(num_records) * val_ratio);
  for (size_t i = 0; i < num_records; ++i) {
    if (i < train_end) {
      splits.train.push_back(order[i]);
    } else if (i < val_end) {
      splits.val.push_back(order[i]);
    } else {
      splits.test.push_back(order[i]);
    }
  }
  return splits;
}

DatasetSplits SplitByTemplate(const std::vector<QueryRecord>& records,
                              double train_ratio, double val_ratio, Rng* rng) {
  PRESTROID_CHECK(rng != nullptr);
  std::map<int, std::vector<size_t>> by_template;
  for (size_t i = 0; i < records.size(); ++i) {
    by_template[records[i].template_id].push_back(i);
  }
  std::vector<int> templates;
  templates.reserve(by_template.size());
  for (const auto& [id, members] : by_template) templates.push_back(id);
  rng->Shuffle(&templates);

  DatasetSplits splits;
  const size_t n = templates.size();
  const size_t train_end =
      static_cast<size_t>(static_cast<double>(n) * train_ratio);
  const size_t val_end =
      train_end + static_cast<size_t>(static_cast<double>(n) * val_ratio);
  for (size_t t = 0; t < n; ++t) {
    std::vector<size_t>* bucket = &splits.test;
    if (t < train_end) {
      bucket = &splits.train;
    } else if (t < val_end) {
      bucket = &splits.val;
    }
    for (size_t idx : by_template[templates[t]]) bucket->push_back(idx);
  }
  return splits;
}

std::vector<double> CpuMinutesOf(const std::vector<QueryRecord>& records) {
  std::vector<double> labels;
  labels.reserve(records.size());
  for (const QueryRecord& record : records) {
    labels.push_back(record.metrics.total_cpu_minutes);
  }
  return labels;
}

}  // namespace prestroid::workload
