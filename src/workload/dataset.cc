#include "workload/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::workload {

const char* QuarantineReasonToString(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kMalformedHeader:
      return "malformed-header";
    case QuarantineReason::kTruncatedRecord:
      return "truncated-record";
    case QuarantineReason::kMalformedPlan:
      return "malformed-plan";
    case QuarantineReason::kOverLimitPlan:
      return "over-limit-plan";
    case QuarantineReason::kNonFiniteLabel:
      return "nan-label";
    case QuarantineReason::kNegativeLabel:
      return "negative-label";
    case QuarantineReason::kReasonCount:
      break;
  }
  return "?";
}

std::string IngestStats::Summary() const {
  std::string out =
      StrFormat("accepted=%zu quarantined=%zu", accepted, quarantined);
  if (quarantined == 0) return out;
  out += " (";
  bool first = true;
  for (size_t i = 0; i < by_reason.size(); ++i) {
    if (by_reason[i] == 0) continue;
    if (!first) out += " ";
    first = false;
    out += StrFormat("%s=%zu",
                     QuarantineReasonToString(static_cast<QuarantineReason>(i)),
                     by_reason[i]);
  }
  out += ")";
  if (quarantine_rotations > 0) {
    out += StrFormat(" rotations=%zu dropped-records=%zu", quarantine_rotations,
                     quarantine_dropped);
  }
  return out;
}

namespace {

/// First bytes of the offending record, with control bytes escaped so one
/// quarantined record is always exactly one log line.
std::string SnippetOf(const std::string& chunk) {
  constexpr size_t kMaxSnippet = 96;
  std::string out;
  out.reserve(std::min(chunk.size(), kMaxSnippet) + 8);
  for (size_t i = 0; i < chunk.size() && out.size() < kMaxSnippet; ++i) {
    const unsigned char c = static_cast<unsigned char>(chunk[i]);
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c < 0x20 || c >= 0x7f) {
      out += StrFormat("\\x%02x", c);
    } else {
      out += static_cast<char>(c);
    }
  }
  if (chunk.size() > kMaxSnippet) out += "...";
  return out;
}

/// Append-only sink for quarantined records with a size cap: when the active
/// file would exceed `max_bytes` it rotates to "<path>.1" (replacing any
/// previous rotation) and starts fresh, so a hostile ingest stream can fill
/// at most ~2x the cap no matter how long it runs. Records whose on-disk
/// evidence a rotation discarded are counted, never silently lost. A missing
/// path degrades to counting only; an unwritable path is an environment
/// error surfaced to the caller (silently dropping evidence would defeat the
/// point).
class QuarantineLog {
 public:
  Status Open(const std::string& path, size_t max_bytes) {
    if (path.empty()) return Status::OK();
    path_ = path;
    max_bytes_ = max_bytes;
    out_.open(path, std::ios::app);
    if (!out_.is_open()) {
      return Status::IoError("cannot open quarantine file: " + path);
    }
    const std::ofstream::pos_type at = out_.tellp();
    bytes_ = at < 0 ? 0 : static_cast<size_t>(at);
    return Status::OK();
  }

  Status Append(QuarantineReason reason, size_t ordinal,
                const std::string& chunk) {
    if (!out_.is_open()) return Status::OK();
    const std::string line = StrFormat(
        "%s\t%zu\t%s\n", QuarantineReasonToString(reason), ordinal,
        SnippetOf(chunk).c_str());
    if (max_bytes_ > 0 && line.size() > max_bytes_) {
      // A single record that cannot fit the budget at all is counted as
      // dropped rather than blowing the cap (snippets are short, so this
      // only fires for pathological tiny caps).
      ++dropped_;
      return Status::OK();
    }
    if (max_bytes_ > 0 && bytes_ + line.size() > max_bytes_ && bytes_ > 0) {
      PRESTROID_RETURN_NOT_OK(Rotate());
    }
    out_ << line;
    if (!out_.good()) return Status::IoError("quarantine file write failed");
    bytes_ += line.size();
    ++records_active_;
    return Status::OK();
  }

  size_t rotations() const { return rotations_; }
  size_t dropped() const { return dropped_; }

 private:
  Status Rotate() {
    out_.close();
    // The previous rotation (if any) is overwritten: the records it held are
    // gone from disk, so account for them before the rename.
    dropped_ += records_rotated_;
    if (std::rename(path_.c_str(), (path_ + ".1").c_str()) != 0) {
      return Status::IoError("cannot rotate quarantine file: " + path_);
    }
    records_rotated_ = records_active_;
    records_active_ = 0;
    bytes_ = 0;
    ++rotations_;
    out_.open(path_, std::ios::trunc);
    if (!out_.is_open()) {
      return Status::IoError("cannot reopen quarantine file: " + path_);
    }
    return Status::OK();
  }

  std::ofstream out_;
  std::string path_;
  size_t max_bytes_ = 0;
  size_t bytes_ = 0;
  size_t records_active_ = 0;   // records in the active file (this pass)
  size_t records_rotated_ = 0;  // records in "<path>.1" (this pass)
  size_t rotations_ = 0;
  size_t dropped_ = 0;
};

bool LabelsFinite(const QueryRecord& record) {
  return std::isfinite(record.metrics.total_cpu_minutes) &&
         std::isfinite(record.metrics.peak_memory_gb) &&
         std::isfinite(record.metrics.input_gb);
}

bool LabelsNonNegative(const QueryRecord& record) {
  return record.metrics.total_cpu_minutes >= 0 &&
         record.metrics.peak_memory_gb >= 0 && record.metrics.input_gb >= 0;
}

/// Classifies why one single-record chunk failed the strict parser.
QuarantineReason ClassifyFailure(const std::string& chunk,
                                 const Status& status) {
  if (status.code() == StatusCode::kResourceExhausted) {
    return QuarantineReason::kOverLimitPlan;
  }
  std::istringstream is(chunk);
  std::string first_line;
  std::getline(is, first_line);
  double cpu = 0, mem = 0, input = 0;
  long long id = 0;
  int day = 0, template_id = -1;
  if (std::sscanf(first_line.c_str(), "#QUERY %lld %d %d %lf %lf %lf", &id,
                  &day, &template_id, &cpu, &mem, &input) != 6) {
    return QuarantineReason::kMalformedHeader;
  }
  // Header is fine; a record that never reaches #END was cut off, anything
  // else is a body (usually plan/predicate) problem.
  if (chunk.find("\n#END\n") == std::string::npos &&
      !EndsWith(chunk, "\n#END") && !StartsWith(chunk, "#END")) {
    return QuarantineReason::kTruncatedRecord;
  }
  return QuarantineReason::kMalformedPlan;
}

}  // namespace

Result<IngestResult> IngestTraceTolerant(const std::string& text,
                                         const IngestOptions& options) {
  IngestResult result;
  QuarantineLog log;
  PRESTROID_RETURN_NOT_OK(
      log.Open(options.quarantine_path, options.max_quarantine_bytes));

  // Split into per-record chunks at #QUERY boundaries; each chunk is a
  // complete one-record mini-trace the strict parser can judge in isolation,
  // so one bad record can never poison its neighbours.
  std::vector<std::string> chunks;
  size_t start = std::string::npos;
  size_t scan = 0;
  auto is_record_start = [&text](size_t pos) {
    return text.compare(pos, 7, "#QUERY ") == 0 &&
           (pos == 0 || text[pos - 1] == '\n');
  };
  for (; scan < text.size(); ++scan) {
    if (!is_record_start(scan)) continue;
    if (start != std::string::npos) {
      chunks.push_back(text.substr(start, scan - start));
    } else if (!Trim(text.substr(0, scan)).empty()) {
      // Junk before the first record is its own quarantined chunk.
      chunks.push_back(text.substr(0, scan));
    }
    start = scan;
  }
  if (start != std::string::npos) {
    chunks.push_back(text.substr(start));
  } else if (!Trim(text).empty()) {
    chunks.push_back(text);
  }

  auto quarantine = [&](size_t ordinal, const std::string& chunk,
                        QuarantineReason reason) -> Status {
    ++result.stats.quarantined;
    ++result.stats.by_reason[static_cast<size_t>(reason)];
    return log.Append(reason, ordinal, chunk);
  };

  for (size_t i = 0; i < chunks.size(); ++i) {
    const std::string& chunk = chunks[i];
    auto parsed = DeserializeTrace(chunk, options.plan_limits);
    if (!parsed.ok()) {
      PRESTROID_RETURN_NOT_OK(
          quarantine(i, chunk, ClassifyFailure(chunk, parsed.status())));
      continue;
    }
    for (QueryRecord& record : *parsed) {
      if (!LabelsFinite(record)) {
        PRESTROID_RETURN_NOT_OK(
            quarantine(i, chunk, QuarantineReason::kNonFiniteLabel));
        continue;
      }
      if (!LabelsNonNegative(record)) {
        PRESTROID_RETURN_NOT_OK(
            quarantine(i, chunk, QuarantineReason::kNegativeLabel));
        continue;
      }
      result.records.push_back(std::move(record));
      ++result.stats.accepted;
    }
  }
  result.stats.quarantine_rotations = log.rotations();
  result.stats.quarantine_dropped = log.dropped();
  return result;
}

Result<IngestResult> ReadTraceFileTolerant(const std::string& path,
                                           const IngestOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return IngestTraceTolerant(buffer.str(), options);
}

DatasetSplits SplitRandom(size_t num_records, double train_ratio,
                          double val_ratio, Rng* rng) {
  PRESTROID_CHECK(rng != nullptr);
  PRESTROID_CHECK_LE(train_ratio + val_ratio, 1.0 + 1e-9);
  std::vector<size_t> order(num_records);
  for (size_t i = 0; i < num_records; ++i) order[i] = i;
  rng->Shuffle(&order);
  DatasetSplits splits;
  const size_t train_end = static_cast<size_t>(
      static_cast<double>(num_records) * train_ratio);
  const size_t val_end = train_end + static_cast<size_t>(
      static_cast<double>(num_records) * val_ratio);
  for (size_t i = 0; i < num_records; ++i) {
    if (i < train_end) {
      splits.train.push_back(order[i]);
    } else if (i < val_end) {
      splits.val.push_back(order[i]);
    } else {
      splits.test.push_back(order[i]);
    }
  }
  return splits;
}

DatasetSplits SplitByTemplate(const std::vector<QueryRecord>& records,
                              double train_ratio, double val_ratio, Rng* rng) {
  PRESTROID_CHECK(rng != nullptr);
  std::map<int, std::vector<size_t>> by_template;
  for (size_t i = 0; i < records.size(); ++i) {
    by_template[records[i].template_id].push_back(i);
  }
  std::vector<int> templates;
  templates.reserve(by_template.size());
  for (const auto& [id, members] : by_template) templates.push_back(id);
  rng->Shuffle(&templates);

  DatasetSplits splits;
  const size_t n = templates.size();
  const size_t train_end =
      static_cast<size_t>(static_cast<double>(n) * train_ratio);
  const size_t val_end =
      train_end + static_cast<size_t>(static_cast<double>(n) * val_ratio);
  for (size_t t = 0; t < n; ++t) {
    std::vector<size_t>* bucket = &splits.test;
    if (t < train_end) {
      bucket = &splits.train;
    } else if (t < val_end) {
      bucket = &splits.val;
    }
    for (size_t idx : by_template[templates[t]]) bucket->push_back(idx);
  }
  return splits;
}

std::vector<double> CpuMinutesOf(const std::vector<QueryRecord>& records) {
  std::vector<double> labels;
  labels.reserve(records.size());
  for (const QueryRecord& record : records) {
    labels.push_back(record.metrics.total_cpu_minutes);
  }
  return labels;
}

}  // namespace prestroid::workload
