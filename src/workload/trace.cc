#include "workload/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "plan/plan_text.h"
#include "plan/planner.h"
#include "sql/parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::workload {

Result<std::vector<QueryRecord>> GenerateGrabTrace(
    const GeneratedSchema& schema, const TraceConfig& config) {
  QueryGenerator generator(&schema, config.query_config);
  plan::Planner planner(&schema.catalog);
  cost::CostModel cost_model(&schema.catalog);
  Rng rng(config.seed);

  std::vector<QueryRecord> records;
  records.reserve(config.num_queries);
  const size_t max_attempts = config.num_queries * config.max_attempts_factor;
  size_t attempts = 0;
  int64_t next_id = 0;
  while (records.size() < config.num_queries && attempts < max_attempts) {
    ++attempts;
    const int day =
        config.min_day +
        static_cast<int>(rng.NextUint64(
            static_cast<uint64_t>(config.num_days - config.min_day)));
    const uint64_t structure_seed = rng.Next();
    const uint64_t literal_seed = rng.Next();
    std::string sql = generator.Generate(day, structure_seed, literal_seed);

    auto stmt = sql::ParseSelect(sql);
    if (!stmt.ok()) {
      return Status::Internal("generated query failed to parse: " +
                              stmt.status().ToString() + " sql: " + sql);
    }
    auto planned = planner.Plan(**stmt);
    if (!planned.ok()) {
      return Status::Internal("generated query failed to plan: " +
                              planned.status().ToString() + " sql: " + sql);
    }
    plan::PlanNodePtr query_plan = std::move(planned).value();
    auto metrics = cost_model.Execute(query_plan.get(), &rng);
    if (!metrics.ok()) return metrics.status();

    if (config.filter_by_cpu &&
        (metrics->total_cpu_minutes < config.min_cpu_minutes ||
         metrics->total_cpu_minutes > config.max_cpu_minutes)) {
      continue;
    }
    QueryRecord record;
    record.id = next_id++;
    record.day = day;
    record.sql = std::move(sql);
    record.plan = std::move(query_plan);
    record.metrics = *metrics;
    records.push_back(std::move(record));
  }
  if (records.size() < config.num_queries) {
    return Status::Internal(StrFormat(
        "trace generation accepted only %zu/%zu queries after %zu attempts; "
        "loosen the CPU-time filter or retune the cost model",
        records.size(), config.num_queries, attempts));
  }
  return records;
}

std::string SerializeTrace(const std::vector<QueryRecord>& records) {
  std::ostringstream os;
  os.precision(17);  // round-trip doubles exactly
  for (const QueryRecord& record : records) {
    os << "#QUERY " << record.id << " " << record.day << " "
       << record.template_id << " " << record.metrics.total_cpu_minutes << " "
       << record.metrics.peak_memory_gb << " " << record.metrics.input_gb
       << "\n";
    os << "#SQL " << record.sql << "\n";
    os << "#PLAN\n" << plan::PlanToText(*record.plan);
    os << "#END\n";
  }
  return os.str();
}

Result<std::vector<QueryRecord>> DeserializeTrace(const std::string& text) {
  return DeserializeTrace(text, plan::PlanLimits{});
}

Result<std::vector<QueryRecord>> DeserializeTrace(
    const std::string& text, const plan::PlanLimits& limits) {
  std::vector<QueryRecord> records;
  std::istringstream is(text);
  std::string line;
  QueryRecord current;
  std::string plan_text;
  enum class State { kIdle, kInRecord, kInPlan } state = State::kIdle;
  while (std::getline(is, line)) {
    if (StartsWith(line, "#QUERY ")) {
      if (state != State::kIdle) {
        return Status::ParseError("nested #QUERY in trace");
      }
      current = QueryRecord();
      double cpu = 0, mem = 0, input = 0;
      long long id = 0;
      int day = 0, template_id = -1;
      if (std::sscanf(line.c_str(), "#QUERY %lld %d %d %lf %lf %lf", &id, &day,
                      &template_id, &cpu, &mem, &input) != 6) {
        return Status::ParseError("malformed #QUERY line: " + line);
      }
      current.id = id;
      current.day = day;
      current.template_id = template_id;
      current.metrics.total_cpu_minutes = cpu;
      current.metrics.peak_memory_gb = mem;
      current.metrics.input_gb = input;
      state = State::kInRecord;
    } else if (StartsWith(line, "#SQL ")) {
      if (state != State::kInRecord) {
        return Status::ParseError("#SQL outside record");
      }
      current.sql = line.substr(5);
    } else if (line == "#PLAN") {
      if (state != State::kInRecord) {
        return Status::ParseError("#PLAN outside record");
      }
      plan_text.clear();
      state = State::kInPlan;
    } else if (line == "#END") {
      if (state != State::kInPlan) {
        return Status::ParseError("#END without #PLAN");
      }
      auto parsed = plan::ParsePlanText(plan_text, limits);
      if (!parsed.ok()) return parsed.status();
      current.plan = std::move(parsed).value();
      records.push_back(std::move(current));
      current = QueryRecord();
      state = State::kIdle;
    } else if (state == State::kInPlan) {
      plan_text += line;
      plan_text += "\n";
    } else if (Trim(line).empty()) {
      continue;
    } else {
      return Status::ParseError("unexpected trace line: " + line);
    }
  }
  if (state != State::kIdle) {
    return Status::ParseError("truncated trace file");
  }
  return records;
}

Status WriteTraceFile(const std::string& path,
                      const std::vector<QueryRecord>& records) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IoError("cannot open for write: " + path);
  out << SerializeTrace(records);
  out.close();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<QueryRecord>> ReadTraceFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open for read: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DeserializeTrace(buffer.str());
}

}  // namespace prestroid::workload
