#ifndef PRESTROID_WORKLOAD_TPCDS_TEMPLATES_H_
#define PRESTROID_WORKLOAD_TPCDS_TEMPLATES_H_

#include "workload/trace.h"

namespace prestroid::workload {

/// Parameters of the TPC-DS-like templated workload (paper Section 5.1:
/// 5,153 queries from 81 templates, Presto SF 10, CPU time filtered 1-60min,
/// only predicate literals vary between instances of a template).
struct TpcdsWorkloadConfig {
  size_t num_templates = 81;
  size_t num_queries = 1000;
  uint64_t seed = 23;
  bool filter_by_cpu = true;
  double min_cpu_minutes = 1.0;
  double max_cpu_minutes = 60.0;
  size_t max_attempts_factor = 60;
};

/// Generates the templated trace over the TPC-DS schema: each template is a
/// fixed query skeleton (fixed structure seed); instances re-draw only the
/// predicate literals. Records carry their template_id so splits can be done
/// at the template level (as the paper does).
Result<std::vector<QueryRecord>> GenerateTpcdsTrace(
    const GeneratedSchema& tpcds_schema, const TpcdsWorkloadConfig& config);

/// The query-generator shape profile used for TPC-DS-like templates:
/// moderate joins, no deep pipeline tail (plans top out near the paper's
/// (883, 73) rather than Grab's (4969, 321)).
QueryGenConfig TpcdsQueryGenConfig();

}  // namespace prestroid::workload

#endif  // PRESTROID_WORKLOAD_TPCDS_TEMPLATES_H_
