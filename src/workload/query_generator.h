#ifndef PRESTROID_WORKLOAD_QUERY_GENERATOR_H_
#define PRESTROID_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <string>

#include "workload/schema_generator.h"

namespace prestroid::workload {

/// Knobs controlling the shape distribution of generated queries. Defaults
/// target the Grab-Traces profile: mostly small plans, a heavy Pareto tail of
/// huge joins and deep pipeline chains (Figures 2 and 8).
struct QueryGenConfig {
  /// Join-count distribution: geometric body + Pareto tail.
  double join_geometric_p = 0.45;
  double join_tail_prob = 0.05;
  double join_tail_pareto_alpha = 1.1;
  size_t max_joins = 48;
  /// Probability a FROM relation is itself a subquery (recursive).
  double p_subquery = 0.12;
  size_t max_subquery_depth = 2;
  /// Probability of wrapping the query in a long skinny pipeline of nested
  /// subqueries (creates the depth tail of Figure 2).
  double p_deep_chain = 0.03;
  size_t max_chain_depth = 40;
  double p_where = 0.92;
  size_t max_pred_clauses = 5;
  /// Probability an internal conjunction node is OR instead of AND.
  double p_or = 0.3;
  double p_group_by = 0.40;
  double p_order_by = 0.30;
  double p_limit = 0.45;
  /// Zipf skew of table popularity.
  double table_zipf_s = 1.05;
  /// With this probability a relation is drawn uniformly from tables created
  /// within `recency_window_days` instead of by popularity — models teams
  /// querying freshly-landed tables (drives the Table 1 churn series).
  double recency_prob = 0.10;
  int recency_window_days = 7;
};

/// Generates mini-SQL query strings over a GeneratedSchema.
///
/// The skeleton (tables, join structure, predicate columns, clause shapes) is
/// a deterministic function of `structure_seed`; literal values are a
/// function of `literal_seed`. Re-using a structure seed with fresh literal
/// seeds yields "template instances" — exactly how the TPC-DS-like workload
/// varies only predicate fields between queries (paper Section 5.1).
class QueryGenerator {
 public:
  QueryGenerator(const GeneratedSchema* schema, QueryGenConfig config = {});

  /// Generates the SQL text of one query visible on `day` (only tables whose
  /// creation_day <= day are referenced).
  std::string Generate(int day, uint64_t structure_seed,
                       uint64_t literal_seed) const;

  const QueryGenConfig& config() const { return config_; }

 private:
  const GeneratedSchema* schema_;
  QueryGenConfig config_;
};

}  // namespace prestroid::workload

#endif  // PRESTROID_WORKLOAD_QUERY_GENERATOR_H_
