#include "workload/query_generator.h"

#include <algorithm>
#include <cmath>

#include "sql/ast.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::workload {

namespace {

using plan::ColumnDef;
using plan::ColumnType;
using sql::ExprPtr;

/// One relation in the FROM scope of a query being generated.
struct RelInfo {
  std::string alias;
  std::vector<ColumnDef> columns;
};

/// Stateful generator for a single query; splits structural choices (srng)
/// from literal choices (lrng) so templates can be re-instantiated.
class Generation {
 public:
  Generation(const GeneratedSchema* schema, const QueryGenConfig& config,
             const std::vector<std::string>& tables, int day, Rng srng,
             Rng lrng)
      : schema_(schema),
        config_(config),
        tables_(tables),
        srng_(srng),
        lrng_(lrng) {
    // Tables created within the recency window, for recency-biased picks.
    for (size_t i = 0; i < schema->table_names.size(); ++i) {
      if (schema->creation_day[i] <= day &&
          schema->creation_day[i] > day - config.recency_window_days) {
        recent_tables_.push_back(schema->table_names[i]);
      }
    }
  }

  std::unique_ptr<sql::SelectStmt> Build() {
    auto stmt = BuildSelect(/*depth=*/0, /*joins_budget=*/DrawJoinCount());
    // Deep pipeline chain: wrap in nested single-relation subqueries.
    if (srng_.Bernoulli(config_.p_deep_chain)) {
      size_t chain =
          1 + srng_.NextUint64(std::max<size_t>(1, config_.max_chain_depth));
      for (size_t i = 0; i < chain; ++i) stmt = WrapInChainStage(std::move(stmt));
    }
    return stmt;
  }

 private:
  size_t DrawJoinCount() {
    if (srng_.Bernoulli(config_.join_tail_prob)) {
      double tail = srng_.Pareto(3.0, config_.join_tail_pareto_alpha);
      return std::min(config_.max_joins, static_cast<size_t>(tail));
    }
    // Geometric body.
    size_t joins = 0;
    while (joins < 6 && srng_.Bernoulli(config_.join_geometric_p)) ++joins;
    return joins;
  }

  const ColumnDef& PickColumn(const RelInfo& rel) {
    return rel.columns[srng_.NextUint64(rel.columns.size())];
  }

  /// Prefers an integer "join key" column.
  const ColumnDef& PickJoinColumn(const RelInfo& rel) {
    std::vector<size_t> ints;
    for (size_t i = 0; i < rel.columns.size(); ++i) {
      if (rel.columns[i].type == ColumnType::kInt) ints.push_back(i);
    }
    if (!ints.empty()) return rel.columns[ints[srng_.NextUint64(ints.size())]];
    return PickColumn(rel);
  }

  ExprPtr Literal(const ColumnDef& col) {
    switch (col.type) {
      case ColumnType::kString: {
        size_t v = lrng_.NextUint64(
            static_cast<uint64_t>(std::max(2.0, col.num_distinct)));
        return sql::MakeString(StrFormat("%s_v%zu", col.name.c_str(), v));
      }
      case ColumnType::kInt:
        return sql::MakeNumber(std::floor(
            lrng_.Uniform(col.min_value, std::max(col.min_value + 1, col.max_value))));
      case ColumnType::kDouble:
      case ColumnType::kTimestamp:
        return sql::MakeNumber(lrng_.Uniform(col.min_value, col.max_value));
    }
    return sql::MakeNumber(0);
  }

  /// One atomic predicate clause on a random column of `rel`.
  ExprPtr AtomicClause(const RelInfo& rel) {
    const ColumnDef& col = PickColumn(rel);
    ExprPtr column = sql::MakeColumn(rel.alias, col.name);
    const double roll = srng_.UniformDouble();
    if (col.type == ColumnType::kString) {
      if (roll < 0.45) return sql::MakeCompare("=", std::move(column), Literal(col));
      if (roll < 0.65) {
        std::vector<ExprPtr> values;
        size_t k = 2 + lrng_.NextUint64(4);
        for (size_t i = 0; i < k; ++i) values.push_back(Literal(col));
        return sql::MakeIn(std::move(column), std::move(values));
      }
      if (roll < 0.85) {
        return sql::MakeLike(std::move(column),
                             sql::MakeString(StrFormat(
                                 "%%%s%%", col.name.substr(0, 3).c_str())));
      }
      return sql::MakeIsNull(std::move(column), srng_.Bernoulli(0.5));
    }
    // Numeric / timestamp columns.
    if (roll < 0.30) return sql::MakeCompare("=", std::move(column), Literal(col));
    if (roll < 0.70) {
      const char* ops[] = {"<", "<=", ">", ">="};
      return sql::MakeCompare(ops[srng_.NextUint64(4)], std::move(column),
                              Literal(col));
    }
    if (roll < 0.90) {
      ExprPtr lo = Literal(col);
      ExprPtr hi = Literal(col);
      if (lo->number > hi->number) std::swap(lo->number, hi->number);
      return sql::MakeBetween(std::move(column), std::move(lo), std::move(hi));
    }
    std::vector<ExprPtr> values;
    size_t k = 2 + lrng_.NextUint64(3);
    for (size_t i = 0; i < k; ++i) values.push_back(Literal(col));
    return sql::MakeIn(std::move(column), std::move(values));
  }

  /// A conjunction tree of `clauses` atomic predicates over random relations.
  ExprPtr PredicateTree(const std::vector<RelInfo>& rels, size_t clauses) {
    std::vector<ExprPtr> parts;
    for (size_t i = 0; i < clauses; ++i) {
      parts.push_back(AtomicClause(rels[srng_.NextUint64(rels.size())]));
    }
    ExprPtr tree = std::move(parts[0]);
    for (size_t i = 1; i < parts.size(); ++i) {
      if (srng_.Bernoulli(config_.p_or)) {
        tree = sql::MakeOr(std::move(tree), std::move(parts[i]));
      } else {
        tree = sql::MakeAnd(std::move(tree), std::move(parts[i]));
      }
    }
    return tree;
  }

  std::string NextAlias() { return StrFormat("t%zu", alias_counter_++); }

  /// Materializes one FROM relation: a base table or (recursively) a
  /// subquery, returning both its TableRef and its visible column schema.
  std::pair<sql::TableRef, RelInfo> MakeRelation(size_t depth) {
    sql::TableRef ref;
    RelInfo info;
    info.alias = NextAlias();
    ref.alias = info.alias;
    if (depth < config_.max_subquery_depth &&
        srng_.Bernoulli(config_.p_subquery)) {
      auto sub = BuildSelect(depth + 1, /*joins_budget=*/srng_.NextUint64(3));
      // Visible columns = the subquery's aliased outputs.
      for (const sql::SelectItem& item : sub->items) {
        ColumnDef col;
        col.name = item.alias;
        col.type = ColumnType::kDouble;
        col.num_distinct = 1000;
        col.min_value = 0;
        col.max_value = 1e6;
        if (!col.name.empty()) info.columns.push_back(std::move(col));
      }
      ref.subquery = std::move(sub);
      if (info.columns.empty()) {
        ColumnDef col;
        col.name = "c0";
        info.columns.push_back(std::move(col));
      }
    } else {
      if (!recent_tables_.empty() && srng_.Bernoulli(config_.recency_prob)) {
        ref.table = recent_tables_[srng_.NextUint64(recent_tables_.size())];
      } else {
        size_t idx = srng_.Zipf(tables_.size(), config_.table_zipf_s);
        ref.table = tables_[idx];
      }
      const plan::TableDef* def =
          schema_->catalog.GetTable(ref.table).ValueOrDie();
      info.columns = def->columns;
    }
    return {std::move(ref), std::move(info)};
  }

  std::unique_ptr<sql::SelectStmt> BuildSelect(size_t depth,
                                               size_t joins_budget) {
    auto stmt = std::make_unique<sql::SelectStmt>();
    std::vector<RelInfo> rels;

    auto [from_ref, from_info] = MakeRelation(depth);
    stmt->from = std::move(from_ref);
    rels.push_back(std::move(from_info));

    for (size_t j = 0; j < joins_budget; ++j) {
      auto [ref, info] = MakeRelation(depth);
      sql::JoinClause join;
      double roll = srng_.UniformDouble();
      join.type = roll < 0.8   ? sql::JoinType::kInner
                  : roll < 0.95 ? sql::JoinType::kLeft
                                : sql::JoinType::kRight;
      const RelInfo& left = rels[srng_.NextUint64(rels.size())];
      const ColumnDef& lcol = PickJoinColumn(left);
      const ColumnDef& rcol = PickJoinColumn(info);
      join.condition =
          sql::MakeCompare("=", sql::MakeColumn(left.alias, lcol.name),
                           sql::MakeColumn(info.alias, rcol.name));
      join.ref = std::move(ref);
      stmt->joins.push_back(std::move(join));
      rels.push_back(std::move(info));
    }

    if (srng_.Bernoulli(config_.p_where)) {
      size_t clauses = 1 + srng_.NextUint64(config_.max_pred_clauses);
      stmt->where = PredicateTree(rels, clauses);
    }

    const bool grouped = srng_.Bernoulli(config_.p_group_by);
    if (grouped) {
      size_t num_keys = 1 + srng_.NextUint64(2);
      for (size_t k = 0; k < num_keys; ++k) {
        const RelInfo& rel = rels[srng_.NextUint64(rels.size())];
        const ColumnDef& col = PickColumn(rel);
        stmt->group_by.push_back(sql::MakeColumn(rel.alias, col.name));
        sql::SelectItem item;
        item.expr = sql::MakeColumn(rel.alias, col.name);
        item.alias = StrFormat("k%zu", k);
        stmt->items.push_back(std::move(item));
      }
      size_t num_aggs = 1 + srng_.NextUint64(3);
      const char* fns[] = {"COUNT", "SUM", "AVG", "MIN", "MAX"};
      for (size_t a = 0; a < num_aggs; ++a) {
        const RelInfo& rel = rels[srng_.NextUint64(rels.size())];
        const ColumnDef& col = PickColumn(rel);
        const char* fn = fns[srng_.NextUint64(5)];
        std::vector<ExprPtr> args;
        args.push_back(sql::MakeColumn(rel.alias, col.name));
        sql::SelectItem item;
        item.expr = sql::MakeFuncCall(fn, std::move(args));
        item.alias = StrFormat("agg%zu", a);
        stmt->items.push_back(std::move(item));
      }
    } else if (depth == 0 && srng_.Bernoulli(0.15)) {
      sql::SelectItem item;
      item.expr = sql::MakeStar();
      stmt->items.push_back(std::move(item));
    } else {
      size_t num_cols = 1 + srng_.NextUint64(5);
      for (size_t i = 0; i < num_cols; ++i) {
        const RelInfo& rel = rels[srng_.NextUint64(rels.size())];
        const ColumnDef& col = PickColumn(rel);
        sql::SelectItem item;
        item.expr = sql::MakeColumn(rel.alias, col.name);
        item.alias = StrFormat("c%zu", i);
        stmt->items.push_back(std::move(item));
      }
    }

    if (srng_.Bernoulli(config_.p_order_by) && !stmt->items.empty()) {
      sql::OrderItem order;
      const sql::SelectItem& target =
          stmt->items[srng_.NextUint64(stmt->items.size())];
      order.expr = target.alias.empty() ? target.expr->Clone()
                                        : sql::MakeColumn("", target.alias);
      order.descending = srng_.Bernoulli(0.5);
      stmt->order_by.push_back(std::move(order));
    }
    if (srng_.Bernoulli(config_.p_limit)) {
      stmt->limit = static_cast<int64_t>(10 + srng_.NextUint64(100000));
    }
    return stmt;
  }

  /// One stage of a deep pipeline: SELECT <cols> FROM (<inner>) tN [WHERE..].
  std::unique_ptr<sql::SelectStmt> WrapInChainStage(
      std::unique_ptr<sql::SelectStmt> inner) {
    auto stmt = std::make_unique<sql::SelectStmt>();
    RelInfo info;
    info.alias = NextAlias();
    for (const sql::SelectItem& item : inner->items) {
      if (item.alias.empty()) continue;
      ColumnDef col;
      col.name = item.alias;
      col.type = ColumnType::kDouble;
      col.num_distinct = 1000;
      col.min_value = 0;
      col.max_value = 1e6;
      info.columns.push_back(std::move(col));
    }
    stmt->from.subquery = std::move(inner);
    stmt->from.alias = info.alias;
    if (info.columns.empty()) {
      // The inner query was a SELECT *; project a synthetic passthrough.
      ColumnDef col;
      col.name = "c0";
      info.columns.push_back(std::move(col));
    }
    size_t keep = 1 + srng_.NextUint64(info.columns.size());
    for (size_t i = 0; i < keep; ++i) {
      sql::SelectItem item;
      item.expr = sql::MakeColumn(info.alias, info.columns[i].name);
      item.alias = info.columns[i].name;
      stmt->items.push_back(std::move(item));
    }
    if (srng_.Bernoulli(0.5)) {
      std::vector<RelInfo> rels;
      rels.push_back(std::move(info));
      stmt->where = PredicateTree(rels, 1);
    }
    return stmt;
  }

  const GeneratedSchema* schema_;
  const QueryGenConfig& config_;
  const std::vector<std::string>& tables_;
  std::vector<std::string> recent_tables_;
  Rng srng_;
  Rng lrng_;
  size_t alias_counter_ = 0;
};

}  // namespace

QueryGenerator::QueryGenerator(const GeneratedSchema* schema,
                               QueryGenConfig config)
    : schema_(schema), config_(config) {
  PRESTROID_CHECK(schema != nullptr);
}

std::string QueryGenerator::Generate(int day, uint64_t structure_seed,
                                     uint64_t literal_seed) const {
  std::vector<std::string> tables = schema_->TablesAvailableAt(day);
  PRESTROID_CHECK(!tables.empty()) << "no tables exist on day " << day;
  Generation gen(schema_, config_, tables, day, Rng(structure_seed),
                 Rng(literal_seed));
  return gen.Build()->ToString();
}

}  // namespace prestroid::workload
