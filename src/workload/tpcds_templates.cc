#include "workload/tpcds_templates.h"

#include "plan/planner.h"
#include "sql/parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::workload {

QueryGenConfig TpcdsQueryGenConfig() {
  QueryGenConfig config;
  config.join_geometric_p = 0.55;
  config.join_tail_prob = 0.02;
  config.join_tail_pareto_alpha = 2.0;
  config.max_joins = 8;
  config.p_subquery = 0.15;
  config.max_subquery_depth = 2;
  config.p_deep_chain = 0.01;
  config.max_chain_depth = 10;
  config.p_group_by = 0.6;  // TPC-DS is aggregation-heavy
  config.p_or = 0.25;
  return config;
}

Result<std::vector<QueryRecord>> GenerateTpcdsTrace(
    const GeneratedSchema& tpcds_schema, const TpcdsWorkloadConfig& config) {
  QueryGenerator generator(&tpcds_schema, TpcdsQueryGenConfig());
  plan::Planner planner(&tpcds_schema.catalog);
  cost::CostModel cost_model(&tpcds_schema.catalog);
  Rng rng(config.seed);

  // Fix one structure seed per template. Like the paper (81 of 103 public
  // templates survive its CPU filter), candidate templates whose instances
  // never land inside the CPU band are screened out up front.
  std::vector<uint64_t> template_seeds;
  template_seeds.reserve(config.num_templates);
  size_t screen_attempts = 0;
  const size_t max_screen_attempts = config.num_templates * 40;
  while (template_seeds.size() < config.num_templates &&
         screen_attempts < max_screen_attempts) {
    ++screen_attempts;
    const uint64_t candidate = rng.Next();
    if (!config.filter_by_cpu) {
      template_seeds.push_back(candidate);
      continue;
    }
    size_t accepted = 0;
    for (int probe = 0; probe < 6 && accepted < 2; ++probe) {
      std::string sql = generator.Generate(0, candidate, rng.Next());
      auto stmt = sql::ParseSelect(sql);
      if (!stmt.ok()) break;
      auto planned = planner.Plan(**stmt);
      if (!planned.ok()) break;
      plan::PlanNodePtr probe_plan = std::move(planned).value();
      auto metrics = cost_model.Execute(probe_plan.get(), &rng);
      if (!metrics.ok()) break;
      if (metrics->total_cpu_minutes >= config.min_cpu_minutes &&
          metrics->total_cpu_minutes <= config.max_cpu_minutes) {
        ++accepted;
      }
    }
    if (accepted >= 2) template_seeds.push_back(candidate);
  }
  if (template_seeds.size() < config.num_templates) {
    return Status::Internal(StrFormat(
        "only %zu/%zu TPC-DS templates survive the CPU filter",
        template_seeds.size(), config.num_templates));
  }

  std::vector<QueryRecord> records;
  records.reserve(config.num_queries);
  const size_t max_attempts = config.num_queries * config.max_attempts_factor;
  size_t attempts = 0;
  int64_t next_id = 0;
  // Round-robin over templates so every template is represented.
  size_t template_cursor = 0;
  while (records.size() < config.num_queries && attempts < max_attempts) {
    ++attempts;
    const size_t template_id = template_cursor;
    template_cursor = (template_cursor + 1) % config.num_templates;

    std::string sql = generator.Generate(
        /*day=*/0, template_seeds[template_id], /*literal_seed=*/rng.Next());
    auto stmt = sql::ParseSelect(sql);
    if (!stmt.ok()) {
      return Status::Internal("template instance failed to parse: " +
                              stmt.status().ToString());
    }
    auto planned = planner.Plan(**stmt);
    if (!planned.ok()) {
      return Status::Internal("template instance failed to plan: " +
                              planned.status().ToString());
    }
    plan::PlanNodePtr query_plan = std::move(planned).value();
    auto metrics = cost_model.Execute(query_plan.get(), &rng);
    if (!metrics.ok()) return metrics.status();
    if (config.filter_by_cpu &&
        (metrics->total_cpu_minutes < config.min_cpu_minutes ||
         metrics->total_cpu_minutes > config.max_cpu_minutes)) {
      continue;
    }
    QueryRecord record;
    record.id = next_id++;
    record.day = 0;
    record.template_id = static_cast<int>(template_id);
    record.sql = std::move(sql);
    record.plan = std::move(query_plan);
    record.metrics = *metrics;
    records.push_back(std::move(record));
  }
  if (records.size() < config.num_queries) {
    return Status::Internal(StrFormat(
        "TPC-DS trace accepted only %zu/%zu queries; retune the CPU filter",
        records.size(), config.num_queries));
  }
  return records;
}

}  // namespace prestroid::workload
