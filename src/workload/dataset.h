#ifndef PRESTROID_WORKLOAD_DATASET_H_
#define PRESTROID_WORKLOAD_DATASET_H_

#include <vector>

#include "util/random.h"
#include "workload/trace.h"

namespace prestroid::workload {

/// Index-based train/validation/test partition over a record vector.
struct DatasetSplits {
  std::vector<size_t> train;
  std::vector<size_t> val;
  std::vector<size_t> test;
};

/// Random 8/1/1 split (Grab-Traces protocol). Ratios must sum to <= 1; the
/// remainder goes to test.
DatasetSplits SplitRandom(size_t num_records, double train_ratio,
                          double val_ratio, Rng* rng);

/// Template-level 8/1/1 split (TPC-DS protocol): all instances of a template
/// land in the same partition, so test templates are never seen in training.
DatasetSplits SplitByTemplate(const std::vector<QueryRecord>& records,
                              double train_ratio, double val_ratio, Rng* rng);

/// Extracts the total-CPU-minute label of every record.
std::vector<double> CpuMinutesOf(const std::vector<QueryRecord>& records);

}  // namespace prestroid::workload

#endif  // PRESTROID_WORKLOAD_DATASET_H_
