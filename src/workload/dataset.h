#ifndef PRESTROID_WORKLOAD_DATASET_H_
#define PRESTROID_WORKLOAD_DATASET_H_

#include <array>
#include <string>
#include <vector>

#include "plan/plan_limits.h"
#include "util/random.h"
#include "workload/trace.h"

namespace prestroid::workload {

/// Why one trace record was quarantined instead of ingested.
enum class QuarantineReason {
  kMalformedHeader = 0,  // #QUERY line does not parse
  kTruncatedRecord,      // record body not terminated by #END
  kMalformedPlan,        // plan text / predicate failed to parse
  kOverLimitPlan,        // plan exceeded the configured PlanLimits
  kNonFiniteLabel,       // NaN or infinite metric value
  kNegativeLabel,        // metric value below zero
  kReasonCount,          // sentinel, keep last
};

const char* QuarantineReasonToString(QuarantineReason reason);

/// Counters for one tolerant ingestion pass.
struct IngestStats {
  size_t accepted = 0;
  size_t quarantined = 0;
  std::array<size_t, static_cast<size_t>(QuarantineReason::kReasonCount)>
      by_reason{};
  /// Size-cap rotations of the quarantine file during this pass, and records
  /// whose on-disk evidence was discarded by those rotations (counters only
  /// — the quarantined/by_reason tallies above always cover every record).
  size_t quarantine_rotations = 0;
  size_t quarantine_dropped = 0;

  /// One-line human-readable summary, e.g.
  /// "accepted=98 quarantined=2 (malformed-plan=1 nan-label=1)".
  std::string Summary() const;
};

/// Knobs of the tolerant ingestion path.
struct IngestOptions {
  /// Per-plan resource budget; over-limit plans are quarantined, not fatal.
  plan::PlanLimits plan_limits;
  /// When non-empty, every quarantined record is appended to this file as
  ///   <reason>\t<record-ordinal>\t<escaped first bytes of the record>
  /// so operators can replay or inspect rejects offline. Empty = count only.
  std::string quarantine_path;
  /// Cap on the active quarantine file. When an append would push it past
  /// this, the file rotates to "<path>.1" (replacing any previous rotation,
  /// whose records are counted in IngestStats::quarantine_dropped) and a
  /// fresh file starts — so a hostile stream of rejects occupies at most
  /// ~2x this many bytes on disk no matter how long ingestion runs.
  /// 0 = unlimited.
  size_t max_quarantine_bytes = 8u << 20;
};

/// Tolerantly ingested trace: the clean records plus what was skipped.
struct IngestResult {
  std::vector<QueryRecord> records;
  IngestStats stats;
};

/// Parses a serialized trace, skipping (and counting) hostile records
/// instead of failing the run: malformed headers/plans, over-limit plans,
/// truncated tails, and non-finite or negative labels are quarantined.
/// Only environmental failures (e.g. an unwritable quarantine file) abort.
Result<IngestResult> IngestTraceTolerant(const std::string& text,
                                         const IngestOptions& options);

/// File variant of IngestTraceTolerant.
Result<IngestResult> ReadTraceFileTolerant(const std::string& path,
                                           const IngestOptions& options);

/// Index-based train/validation/test partition over a record vector.
struct DatasetSplits {
  std::vector<size_t> train;
  std::vector<size_t> val;
  std::vector<size_t> test;
};

/// Random 8/1/1 split (Grab-Traces protocol). Ratios must sum to <= 1; the
/// remainder goes to test.
DatasetSplits SplitRandom(size_t num_records, double train_ratio,
                          double val_ratio, Rng* rng);

/// Template-level 8/1/1 split (TPC-DS protocol): all instances of a template
/// land in the same partition, so test templates are never seen in training.
DatasetSplits SplitByTemplate(const std::vector<QueryRecord>& records,
                              double train_ratio, double val_ratio, Rng* rng);

/// Extracts the total-CPU-minute label of every record.
std::vector<double> CpuMinutesOf(const std::vector<QueryRecord>& records);

}  // namespace prestroid::workload

#endif  // PRESTROID_WORKLOAD_DATASET_H_
