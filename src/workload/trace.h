#ifndef PRESTROID_WORKLOAD_TRACE_H_
#define PRESTROID_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "plan/plan_limits.h"
#include "plan/plan_node.h"
#include "workload/query_generator.h"
#include "workload/schema_generator.h"

namespace prestroid::workload {

/// One executed query of a trace: the SQL text, its logical plan, and the
/// simulated profiler metrics (the unit of the Grab-Traces / TPC-DS
/// datasets).
struct QueryRecord {
  int64_t id = 0;
  int day = 0;
  /// Template index for template-derived workloads, -1 for ad-hoc queries.
  int template_id = -1;
  std::string sql;
  plan::PlanNodePtr plan;
  cost::ExecutionMetrics metrics;

  QueryRecord() = default;
  QueryRecord(QueryRecord&&) = default;
  QueryRecord& operator=(QueryRecord&&) = default;
  QueryRecord(const QueryRecord&) = delete;
  QueryRecord& operator=(const QueryRecord&) = delete;
};

/// Parameters of Grab-like trace generation.
struct TraceConfig {
  size_t num_queries = 2000;
  int num_days = 60;
  /// Queries are issued on days in [min_day, num_days). A nonzero min_day
  /// carves out a shifted window (e.g. the Table 5 out-of-range week).
  int min_day = 0;
  uint64_t seed = 11;
  QueryGenConfig query_config;
  /// Keep only queries whose total CPU time falls in this band (the paper
  /// filters to 1-60 minutes). Set filter_by_cpu=false to keep everything
  /// (used by the Figure 2 / Figure 8 shape studies).
  bool filter_by_cpu = true;
  double min_cpu_minutes = 1.0;
  double max_cpu_minutes = 60.0;
  /// Give up after this many candidate generations per accepted query.
  size_t max_attempts_factor = 40;
};

/// Generates a Grab-like trace: ad-hoc diverse queries spread across the
/// day window, executed through the cost simulator. Deterministic per seed.
Result<std::vector<QueryRecord>> GenerateGrabTrace(
    const GeneratedSchema& schema, const TraceConfig& config);

/// Serializes records to the on-disk trace format (SQL + EXPLAIN text +
/// metrics per record).
std::string SerializeTrace(const std::vector<QueryRecord>& records);

/// Parses a serialized trace. Strict: the first malformed or over-limit
/// record fails the whole parse (the tolerant, quarantining path lives in
/// workload/dataset.h). Plans are checked against `limits` while parsing.
Result<std::vector<QueryRecord>> DeserializeTrace(const std::string& text);
Result<std::vector<QueryRecord>> DeserializeTrace(const std::string& text,
                                                  const plan::PlanLimits& limits);

/// Convenience file I/O.
Status WriteTraceFile(const std::string& path,
                      const std::vector<QueryRecord>& records);
Result<std::vector<QueryRecord>> ReadTraceFile(const std::string& path);

}  // namespace prestroid::workload

#endif  // PRESTROID_WORKLOAD_TRACE_H_
