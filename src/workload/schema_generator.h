#ifndef PRESTROID_WORKLOAD_SCHEMA_GENERATOR_H_
#define PRESTROID_WORKLOAD_SCHEMA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "plan/catalog.h"
#include "util/random.h"

namespace prestroid::workload {

/// Parameters of the synthetic data-lake schema. Defaults approximate the
/// paper's setting: a lake with hundreds of tables, wide row-count spread,
/// and steady table churn (new tables appear daily — Table 1).
struct SchemaGenConfig {
  size_t num_tables = 240;
  size_t min_columns = 4;
  size_t max_columns = 36;
  /// Row counts drawn log-normally: exp(N(mu, sigma)).
  double row_count_log_mu = 13.5;
  double row_count_log_sigma = 2.2;
  /// Trace window length in days; tables are created throughout it.
  int num_days = 60;
  /// Fraction of tables that already exist on day 0.
  double initial_fraction = 0.75;
  uint64_t seed = 7;
};

/// A generated schema: the catalog plus per-table creation days used to
/// simulate the lake's growth.
struct GeneratedSchema {
  plan::Catalog catalog;
  std::vector<std::string> table_names;  // aligned with creation_day
  std::vector<int> creation_day;

  /// Names of tables that exist on `day` (creation_day <= day).
  std::vector<std::string> TablesAvailableAt(int day) const;
};

/// Generates a thematically-structured schema: columns are drawn from shared
/// vocabulary themes (geo, time, money, ids, metrics, status) so predicate
/// tokens exhibit the co-occurrence structure Word2Vec exploits (e.g.
/// "longitude"/"latitude" appear together; paper Section 4.2).
GeneratedSchema GenerateSchema(const SchemaGenConfig& config);

/// The TPC-DS-like fixed schema (24 tables with the standard names:
/// store_sales, catalog_sales, web_sales, date_dim, item, customer, ...).
/// `scale_factor` scales fact-table row counts (paper: SF 10).
GeneratedSchema GenerateTpcdsSchema(double scale_factor = 10.0);

/// The TPC-H fixed schema (8 tables: lineitem, orders, customer, part,
/// supplier, partsupp, nation, region). Used by the Figure 2 contrast
/// (paper: 22 public TPC-H plans, max (477, 38)).
GeneratedSchema GenerateTpchSchema(double scale_factor = 10.0);

}  // namespace prestroid::workload

#endif  // PRESTROID_WORKLOAD_SCHEMA_GENERATOR_H_
