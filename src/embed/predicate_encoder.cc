#include "embed/predicate_encoder.h"

#include <algorithm>
#include <cstring>

#include "embed/predicate_tokenizer.h"
#include "util/logging.h"

namespace prestroid::embed {

PredicateEncoder::PredicateEncoder(const Word2Vec* model) : model_(model) {
  PRESTROID_CHECK(model != nullptr);
  PRESTROID_CHECK(model->trained());
}

size_t PredicateEncoder::dim() const { return model_->dim(); }

namespace {

/// Averages the embeddings of known tokens into `out`; returns the number of
/// in-vocabulary tokens found.
size_t AverageTokens(const Word2Vec& model,
                     const std::vector<std::string>& tokens, float* out) {
  const size_t d = model.dim();
  std::memset(out, 0, sizeof(float) * d);
  size_t known = 0;
  for (const std::string& token : tokens) {
    const float* v = model.Embedding(token);
    if (v == nullptr) continue;
    for (size_t j = 0; j < d; ++j) out[j] += v[j];
    ++known;
  }
  if (known > 0) {
    const float inv = 1.0f / static_cast<float>(known);
    for (size_t j = 0; j < d; ++j) out[j] *= inv;
  }
  return known;
}

}  // namespace

bool PredicateEncoder::TryEmbed(const sql::Expr& predicate, float* out) const {
  const size_t d = dim();
  if (IsAtomicClause(predicate)) {
    return AverageTokens(*model_, TokenizeClause(predicate), out) > 0;
  }
  if (predicate.kind == sql::ExprKind::kNot) {
    return TryEmbed(*predicate.children[0], out);
  }
  // AND -> MIN feature pooling over children; OR -> MAX.
  const bool is_and = predicate.kind == sql::ExprKind::kAnd;
  std::vector<float> child(d);
  bool any = false;
  for (const sql::ExprPtr& sub : predicate.children) {
    if (!TryEmbed(*sub, child.data())) continue;
    if (!any) {
      std::memcpy(out, child.data(), sizeof(float) * d);
      any = true;
    } else {
      for (size_t j = 0; j < d; ++j) {
        out[j] = is_and ? std::min(out[j], child[j]) : std::max(out[j], child[j]);
      }
    }
  }
  if (!any) std::memset(out, 0, sizeof(float) * d);
  return any;
}

void PredicateEncoder::FitGlobalFallback(
    const std::vector<const sql::Expr*>& predicates) {
  const size_t d = dim();
  global_fallback_.assign(d, 0.0f);
  std::vector<float> buffer(d);
  size_t count = 0;
  for (const sql::Expr* predicate : predicates) {
    if (predicate == nullptr) continue;
    if (!TryEmbed(*predicate, buffer.data())) continue;
    for (size_t j = 0; j < d; ++j) global_fallback_[j] += buffer[j];
    ++count;
  }
  if (count > 0) {
    const float inv = 1.0f / static_cast<float>(count);
    for (size_t j = 0; j < d; ++j) global_fallback_[j] *= inv;
  }
}

void PredicateEncoder::SetQueryContext(
    const std::vector<const sql::Expr*>& query_predicates) {
  const size_t d = dim();
  query_pred_fallback_.assign(d, 0.0f);
  query_token_fallback_.assign(d, 0.0f);

  // Level 1: mean over the query's embeddable PRED nodes.
  std::vector<float> buffer(d);
  size_t pred_count = 0;
  std::vector<std::string> all_tokens;
  for (const sql::Expr* predicate : query_predicates) {
    if (predicate == nullptr) continue;
    if (TryEmbed(*predicate, buffer.data())) {
      for (size_t j = 0; j < d; ++j) query_pred_fallback_[j] += buffer[j];
      ++pred_count;
    }
    for (std::string& token : TokenizePredicate(*predicate)) {
      all_tokens.push_back(std::move(token));
    }
  }
  if (pred_count > 0) {
    const float inv = 1.0f / static_cast<float>(pred_count);
    for (size_t j = 0; j < d; ++j) query_pred_fallback_[j] *= inv;
  } else {
    query_pred_fallback_.clear();
  }

  // Level 2: mean over all known tokens of the query.
  if (AverageTokens(*model_, all_tokens, buffer.data()) > 0) {
    query_token_fallback_ = buffer;
  } else {
    query_token_fallback_.clear();
  }
  has_query_context_ = true;
}

void PredicateEncoder::ClearQueryContext() {
  query_pred_fallback_.clear();
  query_token_fallback_.clear();
  has_query_context_ = false;
}

void PredicateEncoder::Embed(const sql::Expr& predicate, float* out) const {
  if (TryEmbed(predicate, out)) return;
  const size_t d = dim();
  // Out-of-vocabulary: walk the fallback hierarchy.
  if (has_query_context_ && !query_pred_fallback_.empty()) {
    std::memcpy(out, query_pred_fallback_.data(), sizeof(float) * d);
    return;
  }
  if (has_query_context_ && !query_token_fallback_.empty()) {
    std::memcpy(out, query_token_fallback_.data(), sizeof(float) * d);
    return;
  }
  if (!global_fallback_.empty()) {
    std::memcpy(out, global_fallback_.data(), sizeof(float) * d);
    return;
  }
  std::memset(out, 0, sizeof(float) * d);
}

}  // namespace prestroid::embed
