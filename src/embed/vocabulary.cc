#include "embed/vocabulary.h"

#include <algorithm>

namespace prestroid::embed {

void Vocabulary::Build(const std::vector<std::vector<std::string>>& sentences,
                       size_t min_count) {
  ids_.clear();
  tokens_.clear();
  counts_.clear();
  total_count_ = 0;

  std::map<std::string, int64_t> freq;
  for (const auto& sentence : sentences) {
    for (const std::string& token : sentence) ++freq[token];
  }
  std::vector<std::pair<std::string, int64_t>> kept;
  for (const auto& [token, count] : freq) {
    if (count >= static_cast<int64_t>(min_count)) kept.emplace_back(token, count);
  }
  std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  tokens_.reserve(kept.size());
  counts_.reserve(kept.size());
  for (const auto& [token, count] : kept) {
    ids_.emplace(token, static_cast<int>(tokens_.size()));
    tokens_.push_back(token);
    counts_.push_back(count);
    total_count_ += count;
  }
}

void Vocabulary::Restore(std::vector<std::string> tokens,
                         std::vector<int64_t> counts) {
  ids_.clear();
  total_count_ = 0;
  tokens_ = std::move(tokens);
  counts_ = std::move(counts);
  for (size_t i = 0; i < tokens_.size(); ++i) {
    ids_.emplace(tokens_[i], static_cast<int>(i));
    total_count_ += counts_[i];
  }
}

int Vocabulary::Lookup(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? -1 : it->second;
}

}  // namespace prestroid::embed
