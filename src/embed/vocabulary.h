#ifndef PRESTROID_EMBED_VOCABULARY_H_
#define PRESTROID_EMBED_VOCABULARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace prestroid::embed {

/// Token vocabulary with frequency counts and a min-count cutoff, mirroring
/// Gensim's Word2Vec vocabulary handling (the paper uses min_count = 10).
class Vocabulary {
 public:
  /// Counts tokens across the corpus and keeps those with frequency >=
  /// min_count. Ids are assigned in decreasing-frequency order (ties broken
  /// lexicographically) so id 0 is the most frequent token.
  void Build(const std::vector<std::vector<std::string>>& sentences,
             size_t min_count);

  /// Rebuilds the vocabulary from serialized (token, count) pairs, in id
  /// order (used by model loading).
  void Restore(std::vector<std::string> tokens, std::vector<int64_t> counts);

  /// Returns the token id or -1 if out-of-vocabulary.
  int Lookup(const std::string& token) const;
  bool Contains(const std::string& token) const { return Lookup(token) >= 0; }

  const std::string& TokenOf(size_t id) const { return tokens_[id]; }
  int64_t CountOf(size_t id) const { return counts_[id]; }

  size_t size() const { return tokens_.size(); }
  int64_t total_count() const { return total_count_; }

 private:
  std::map<std::string, int> ids_;
  std::vector<std::string> tokens_;
  std::vector<int64_t> counts_;
  int64_t total_count_ = 0;
};

}  // namespace prestroid::embed

#endif  // PRESTROID_EMBED_VOCABULARY_H_
