#ifndef PRESTROID_EMBED_PREDICATE_ENCODER_H_
#define PRESTROID_EMBED_PREDICATE_ENCODER_H_

#include <vector>

#include "embed/word2vec.h"
#include "otp/otp_encoder.h"
#include "sql/ast.h"

namespace prestroid::embed {

/// Turns predicate expression trees into fixed-width embeddings using a
/// trained Word2Vec model (paper Section 4.2):
///
///  - an atomic clause is the mean of its token embeddings;
///  - AND conjunctions MIN-pool their children, OR conjunctions MAX-pool
///    (following Sun & Li 2019);
///  - out-of-vocabulary predicates fall back through the 3-level hierarchy:
///    mean of the current query's in-vocabulary PRED embeddings, then the
///    mean embedding of the query's known tokens, then the global mean over
///    all training predicates.
class PredicateEncoder : public otp::PredicateEmbedder {
 public:
  /// `model` must be trained and outlive the encoder.
  explicit PredicateEncoder(const Word2Vec* model);

  /// Computes the global fallback (level 3) over the training predicates.
  void FitGlobalFallback(const std::vector<const sql::Expr*>& predicates);

  /// Fallback-vector access for serialization.
  const std::vector<float>& global_fallback() const { return global_fallback_; }
  void RestoreGlobalFallback(std::vector<float> fallback) {
    global_fallback_ = std::move(fallback);
  }

  /// Installs the OOV context for one query before encoding its tree
  /// (levels 1 and 2 of the hierarchy). Pass the query's predicates.
  void SetQueryContext(const std::vector<const sql::Expr*>& query_predicates);
  void ClearQueryContext();

  // otp::PredicateEmbedder:
  size_t dim() const override;
  void Embed(const sql::Expr& predicate, float* out) const override;

  /// Returns false (and leaves `out` zero) when the predicate has no
  /// in-vocabulary token anywhere — the caller then applies the fallback.
  bool TryEmbed(const sql::Expr& predicate, float* out) const;

 private:
  const Word2Vec* model_;
  std::vector<float> global_fallback_;
  std::vector<float> query_pred_fallback_;
  std::vector<float> query_token_fallback_;
  bool has_query_context_ = false;
};

}  // namespace prestroid::embed

#endif  // PRESTROID_EMBED_PREDICATE_ENCODER_H_
