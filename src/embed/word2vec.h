#ifndef PRESTROID_EMBED_WORD2VEC_H_
#define PRESTROID_EMBED_WORD2VEC_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "embed/vocabulary.h"
#include "util/random.h"
#include "util/status.h"

namespace prestroid::embed {

/// Training algorithm variants (Mikolov et al. 2013).
enum class Word2VecMode { kSkipGram, kCbow };

/// Hyper-parameters. Defaults follow the paper: window 5, min_count 10,
/// feature size P_f chosen per experiment.
struct Word2VecConfig {
  Word2VecMode mode = Word2VecMode::kSkipGram;
  size_t dim = 100;          // P_f
  size_t window = 5;
  size_t min_count = 10;
  size_t negative = 5;       // negative samples per positive pair
  size_t epochs = 5;
  float learning_rate = 0.025f;
  float min_learning_rate = 0.0001f;
  uint64_t seed = 101;
};

/// From-scratch Word2Vec with negative sampling (the Gensim substitution of
/// DESIGN.md §2). Trained on predicate token "sentences" produced by
/// TokenizePredicate.
class Word2Vec {
 public:
  explicit Word2Vec(Word2VecConfig config = {});

  /// Builds the vocabulary and trains embeddings. Fails with InvalidArgument
  /// if no token survives the min_count cutoff.
  Status Train(const std::vector<std::vector<std::string>>& sentences);

  size_t dim() const { return config_.dim; }
  const Vocabulary& vocabulary() const { return vocab_; }
  bool trained() const { return trained_; }

  /// Serializes the trained model (config, vocabulary, both embedding
  /// matrices) to a stream; Restore() reverses it.
  void Serialize(std::ostream& os) const;
  Status Restore(std::istream& is);

  const Word2VecConfig& config() const { return config_; }

  /// Returns the embedding of `token`, or nullptr if out-of-vocabulary.
  const float* Embedding(const std::string& token) const;
  const float* EmbeddingOf(size_t token_id) const;

  /// Cosine similarity between two tokens; NotFound if either is OOV.
  Result<double> Similarity(const std::string& a, const std::string& b) const;

  /// The `top_k` in-vocabulary tokens most similar to `token`.
  Result<std::vector<std::pair<std::string, double>>> MostSimilar(
      const std::string& token, size_t top_k) const;

 private:
  void TrainPair(int center, int context, float lr);
  void TrainCbowWindow(const std::vector<int>& context_ids, int center,
                       float lr);
  int SampleNegative();

  Word2VecConfig config_;
  Vocabulary vocab_;
  bool trained_ = false;
  std::vector<float> input_vectors_;   // [vocab, dim] word embeddings
  std::vector<float> output_vectors_;  // [vocab, dim] context embeddings
  std::vector<int> negative_table_;    // unigram^0.75 sampling table
  Rng rng_;
};

}  // namespace prestroid::embed

#endif  // PRESTROID_EMBED_WORD2VEC_H_
