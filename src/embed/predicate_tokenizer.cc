#include "embed/predicate_tokenizer.h"

#include "util/string_util.h"

namespace prestroid::embed {

namespace {

/// Appends column-name tokens of a value expression (literals are dropped).
void CollectColumnTokens(const sql::Expr& expr, std::vector<std::string>* out) {
  if (expr.kind == sql::ExprKind::kColumn && expr.name != "*") {
    out->push_back(ToLower(expr.name));
  }
  for (const sql::ExprPtr& child : expr.children) {
    CollectColumnTokens(*child, out);
  }
}

}  // namespace

bool IsAtomicClause(const sql::Expr& expr) {
  switch (expr.kind) {
    case sql::ExprKind::kAnd:
    case sql::ExprKind::kOr:
    case sql::ExprKind::kNot:
      return false;
    default:
      return true;
  }
}

std::vector<std::string> TokenizeClause(const sql::Expr& clause) {
  std::vector<std::string> tokens;
  switch (clause.kind) {
    case sql::ExprKind::kCompare:
      CollectColumnTokens(clause, &tokens);
      tokens.push_back(clause.op);
      break;
    case sql::ExprKind::kIn:
      CollectColumnTokens(*clause.children[0], &tokens);
      tokens.push_back("IN");
      break;
    case sql::ExprKind::kBetween:
      CollectColumnTokens(*clause.children[0], &tokens);
      tokens.push_back("BETWEEN");
      break;
    case sql::ExprKind::kLike:
      CollectColumnTokens(*clause.children[0], &tokens);
      tokens.push_back("LIKE");
      break;
    case sql::ExprKind::kIsNull:
      CollectColumnTokens(*clause.children[0], &tokens);
      tokens.push_back(clause.op == "NOT" ? "IS_NOT_NULL" : "IS_NULL");
      break;
    default:
      // Bare columns / arithmetic in predicate position: keep the columns.
      CollectColumnTokens(clause, &tokens);
      break;
  }
  return tokens;
}

std::vector<std::string> TokenizePredicate(const sql::Expr& predicate) {
  std::vector<std::string> tokens;
  if (IsAtomicClause(predicate)) {
    return TokenizeClause(predicate);
  }
  for (const sql::ExprPtr& child : predicate.children) {
    for (std::string& token : TokenizePredicate(*child)) {
      tokens.push_back(std::move(token));
    }
  }
  return tokens;
}

void CollectAtomicClauses(const sql::Expr& predicate,
                          std::vector<const sql::Expr*>* clauses) {
  if (IsAtomicClause(predicate)) {
    clauses->push_back(&predicate);
    return;
  }
  for (const sql::ExprPtr& child : predicate.children) {
    CollectAtomicClauses(*child, clauses);
  }
}

}  // namespace prestroid::embed
