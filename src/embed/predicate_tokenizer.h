#ifndef PRESTROID_EMBED_PREDICATE_TOKENIZER_H_
#define PRESTROID_EMBED_PREDICATE_TOKENIZER_H_

#include <string>
#include <vector>

#include "sql/ast.h"

namespace prestroid::embed {

/// Extracts the Word2Vec training tokens of one *atomic* predicate clause:
/// column names and the comparison operator, with all literal values omitted
/// (paper Section 4.2 / Figure 4). E.g. `a.longitude > 103.8` ->
/// ["longitude", ">"].
std::vector<std::string> TokenizeClause(const sql::Expr& clause);

/// Flattens a whole predicate tree into its token sequence, stripping the
/// AND/OR conjunctions and every literal. This is the "sentence" a predicate
/// contributes to Word2Vec training.
std::vector<std::string> TokenizePredicate(const sql::Expr& predicate);

/// True for the atomic clause kinds (everything except AND/OR/NOT).
bool IsAtomicClause(const sql::Expr& expr);

/// Collects pointers to the atomic clauses of a predicate tree in-order.
void CollectAtomicClauses(const sql::Expr& predicate,
                          std::vector<const sql::Expr*>* clauses);

}  // namespace prestroid::embed

#endif  // PRESTROID_EMBED_PREDICATE_TOKENIZER_H_
