#include "embed/word2vec.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace prestroid::embed {

namespace {

constexpr size_t kNegativeTableSize = 1 << 18;

float FastSigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace

Word2Vec::Word2Vec(Word2VecConfig config)
    : config_(config), rng_(config.seed) {
  PRESTROID_CHECK_GT(config_.dim, 0u);
  PRESTROID_CHECK_GT(config_.window, 0u);
}

Status Word2Vec::Train(const std::vector<std::vector<std::string>>& sentences) {
  vocab_.Build(sentences, config_.min_count);
  if (vocab_.size() == 0) {
    return Status::InvalidArgument(
        "no token meets the min_count cutoff; lower min_count or supply more "
        "sentences");
  }
  const size_t v = vocab_.size();
  const size_t d = config_.dim;

  // Initialize: input vectors uniform in [-0.5/d, 0.5/d], outputs zero
  // (the word2vec.c convention).
  input_vectors_.assign(v * d, 0.0f);
  output_vectors_.assign(v * d, 0.0f);
  for (float& w : input_vectors_) {
    w = static_cast<float>((rng_.UniformDouble() - 0.5) / static_cast<double>(d));
  }

  // Unigram^0.75 negative-sampling table.
  negative_table_.assign(kNegativeTableSize, 0);
  double norm = 0.0;
  for (size_t i = 0; i < v; ++i) {
    norm += std::pow(static_cast<double>(vocab_.CountOf(i)), 0.75);
  }
  size_t pos = 0;
  double acc = 0.0;
  for (size_t i = 0; i < v && pos < kNegativeTableSize; ++i) {
    acc += std::pow(static_cast<double>(vocab_.CountOf(i)), 0.75) / norm;
    size_t until = std::min(
        kNegativeTableSize,
        static_cast<size_t>(acc * static_cast<double>(kNegativeTableSize)));
    for (; pos < until; ++pos) negative_table_[pos] = static_cast<int>(i);
  }
  for (; pos < kNegativeTableSize; ++pos) {
    negative_table_[pos] = static_cast<int>(v - 1);
  }

  // Map sentences to id sequences once (drop OOV tokens).
  std::vector<std::vector<int>> id_sentences;
  size_t total_tokens = 0;
  id_sentences.reserve(sentences.size());
  for (const auto& sentence : sentences) {
    std::vector<int> ids;
    ids.reserve(sentence.size());
    for (const std::string& token : sentence) {
      int id = vocab_.Lookup(token);
      if (id >= 0) ids.push_back(id);
    }
    if (ids.size() >= 2) {
      total_tokens += ids.size();
      id_sentences.push_back(std::move(ids));
    }
  }
  if (id_sentences.empty()) {
    return Status::InvalidArgument("no sentence has two in-vocabulary tokens");
  }

  const double total_steps =
      static_cast<double>(total_tokens) * static_cast<double>(config_.epochs);
  double step = 0.0;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const std::vector<int>& ids : id_sentences) {
      for (size_t center = 0; center < ids.size(); ++center) {
        float lr = static_cast<float>(
            config_.learning_rate * (1.0 - step / (total_steps + 1.0)));
        lr = std::max(lr, config_.min_learning_rate);
        // Dynamic window shrink, as in word2vec.c.
        size_t reduced =
            1 + static_cast<size_t>(rng_.NextUint64(config_.window));
        size_t lo = center >= reduced ? center - reduced : 0;
        size_t hi = std::min(ids.size() - 1, center + reduced);
        if (config_.mode == Word2VecMode::kSkipGram) {
          for (size_t ctx = lo; ctx <= hi; ++ctx) {
            if (ctx == center) continue;
            TrainPair(ids[center], ids[ctx], lr);
          }
        } else {
          std::vector<int> context;
          for (size_t ctx = lo; ctx <= hi; ++ctx) {
            if (ctx != center) context.push_back(ids[ctx]);
          }
          if (!context.empty()) TrainCbowWindow(context, ids[center], lr);
        }
        step += 1.0;
      }
    }
  }
  trained_ = true;
  return Status::OK();
}

void Word2Vec::TrainPair(int center, int context, float lr) {
  const size_t d = config_.dim;
  float* in = input_vectors_.data() + static_cast<size_t>(center) * d;
  std::vector<float> grad_in(d, 0.0f);
  for (size_t k = 0; k <= config_.negative; ++k) {
    int target;
    float label;
    if (k == 0) {
      target = context;
      label = 1.0f;
    } else {
      target = SampleNegative();
      if (target == context) continue;
      label = 0.0f;
    }
    float* out = output_vectors_.data() + static_cast<size_t>(target) * d;
    float dot = 0.0f;
    for (size_t j = 0; j < d; ++j) dot += in[j] * out[j];
    const float g = (label - FastSigmoid(dot)) * lr;
    for (size_t j = 0; j < d; ++j) {
      grad_in[j] += g * out[j];
      out[j] += g * in[j];
    }
  }
  for (size_t j = 0; j < d; ++j) in[j] += grad_in[j];
}

void Word2Vec::TrainCbowWindow(const std::vector<int>& context_ids, int center,
                               float lr) {
  const size_t d = config_.dim;
  // Mean of context vectors.
  std::vector<float> mean(d, 0.0f);
  for (int id : context_ids) {
    const float* in = input_vectors_.data() + static_cast<size_t>(id) * d;
    for (size_t j = 0; j < d; ++j) mean[j] += in[j];
  }
  const float inv = 1.0f / static_cast<float>(context_ids.size());
  for (size_t j = 0; j < d; ++j) mean[j] *= inv;

  std::vector<float> grad(d, 0.0f);
  for (size_t k = 0; k <= config_.negative; ++k) {
    int target;
    float label;
    if (k == 0) {
      target = center;
      label = 1.0f;
    } else {
      target = SampleNegative();
      if (target == center) continue;
      label = 0.0f;
    }
    float* out = output_vectors_.data() + static_cast<size_t>(target) * d;
    float dot = 0.0f;
    for (size_t j = 0; j < d; ++j) dot += mean[j] * out[j];
    const float g = (label - FastSigmoid(dot)) * lr;
    for (size_t j = 0; j < d; ++j) {
      grad[j] += g * out[j];
      out[j] += g * mean[j];
    }
  }
  for (int id : context_ids) {
    float* in = input_vectors_.data() + static_cast<size_t>(id) * d;
    for (size_t j = 0; j < d; ++j) in[j] += grad[j];
  }
}

int Word2Vec::SampleNegative() {
  return negative_table_[rng_.NextUint64(negative_table_.size())];
}

void Word2Vec::Serialize(std::ostream& os) const {
  PRESTROID_CHECK(trained_);
  os.precision(9);  // float32 round-trips with 9 significant digits
  os << "W2V v1 " << static_cast<int>(config_.mode) << " " << config_.dim
     << " " << config_.window << " " << config_.min_count << " "
     << config_.negative << "\n";
  os << vocab_.size() << "\n";
  for (size_t i = 0; i < vocab_.size(); ++i) {
    os << vocab_.TokenOf(i) << " " << vocab_.CountOf(i) << "\n";
  }
  auto dump = [&os](const std::vector<float>& data) {
    for (size_t i = 0; i < data.size(); ++i) {
      if (i > 0) os << " ";
      os << data[i];
    }
    os << "\n";
  };
  dump(input_vectors_);
  dump(output_vectors_);
}

Status Word2Vec::Restore(std::istream& is) {
  std::string magic, version;
  int mode = 0;
  is >> magic >> version >> mode >> config_.dim >> config_.window >>
      config_.min_count >> config_.negative;
  if (!is.good() || magic != "W2V" || version != "v1") {
    return Status::ParseError("bad Word2Vec header");
  }
  config_.mode = static_cast<Word2VecMode>(mode);
  // The header fields drive allocations below, so bound them before use: a
  // corrupted dim or vocab count must fail cleanly, not request
  // vocab_size * dim floats of memory or spin a SIZE_MAX loop.
  constexpr size_t kMaxRestoreDim = 1u << 16;
  constexpr size_t kMaxRestoreVocab = 1u << 24;
  if (config_.dim == 0 || config_.dim > kMaxRestoreDim) {
    return Status::DataCorruption("implausible Word2Vec dimension");
  }
  size_t vocab_size = 0;
  is >> vocab_size;
  if (!is.good() || vocab_size > kMaxRestoreVocab) {
    return Status::DataCorruption("implausible Word2Vec vocabulary size");
  }
  std::vector<std::string> tokens(vocab_size);
  std::vector<int64_t> counts(vocab_size);
  for (size_t i = 0; i < vocab_size; ++i) {
    is >> tokens[i] >> counts[i];
    if (is.fail()) return Status::ParseError("truncated Word2Vec vocabulary");
  }
  if (!is.good()) return Status::ParseError("truncated Word2Vec vocabulary");
  vocab_.Restore(std::move(tokens), std::move(counts));
  input_vectors_.assign(vocab_size * config_.dim, 0.0f);
  output_vectors_.assign(vocab_size * config_.dim, 0.0f);
  for (float& w : input_vectors_) is >> w;
  for (float& w : output_vectors_) is >> w;
  if (is.fail()) return Status::ParseError("truncated Word2Vec embeddings");
  trained_ = true;
  return Status::OK();
}

const float* Word2Vec::Embedding(const std::string& token) const {
  int id = vocab_.Lookup(token);
  if (id < 0) return nullptr;
  return EmbeddingOf(static_cast<size_t>(id));
}

const float* Word2Vec::EmbeddingOf(size_t token_id) const {
  PRESTROID_CHECK(trained_);
  PRESTROID_CHECK_LT(token_id, vocab_.size());
  return input_vectors_.data() + token_id * config_.dim;
}

Result<double> Word2Vec::Similarity(const std::string& a,
                                    const std::string& b) const {
  const float* va = Embedding(a);
  const float* vb = Embedding(b);
  if (va == nullptr || vb == nullptr) {
    return Status::NotFound("token out of vocabulary");
  }
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t j = 0; j < config_.dim; ++j) {
    dot += static_cast<double>(va[j]) * vb[j];
    na += static_cast<double>(va[j]) * va[j];
    nb += static_cast<double>(vb[j]) * vb[j];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

Result<std::vector<std::pair<std::string, double>>> Word2Vec::MostSimilar(
    const std::string& token, size_t top_k) const {
  if (Embedding(token) == nullptr) {
    return Status::NotFound("token out of vocabulary: " + token);
  }
  std::vector<std::pair<std::string, double>> scored;
  for (size_t i = 0; i < vocab_.size(); ++i) {
    const std::string& other = vocab_.TokenOf(i);
    if (other == token) continue;
    auto sim = Similarity(token, other);
    scored.emplace_back(other, sim.ValueOrDie());
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (scored.size() > top_k) scored.resize(top_k);
  return scored;
}

}  // namespace prestroid::embed
