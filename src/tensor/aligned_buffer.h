#ifndef PRESTROID_TENSOR_ALIGNED_BUFFER_H_
#define PRESTROID_TENSOR_ALIGNED_BUFFER_H_

#include <algorithm>
#include <cstddef>
#include <new>
#include <utility>

namespace prestroid {

/// Float storage with 64-byte-aligned allocation — the substrate Tensor sits
/// on so the kernel layer (tensor/kernels/) can assume every tensor's row 0
/// starts on a cache-line/SIMD boundary.
///
/// Semantics deliberately mirror the std::vector<float> it replaced:
/// value-initialized (zeroed) growth, deep copies, moved-from buffers empty.
/// Capacity is always rounded up to kPadFloats elements, so a buffer's usable
/// backing store never ends mid-SIMD-vector; kernels still must not write
/// past size() (the padding is an alignment guarantee, not scratch space).
class AlignedBuffer {
 public:
  /// Allocation alignment in bytes (one x86 cache line, holds an AVX-512
  /// vector).
  static constexpr size_t kAlignment = 64;
  /// Capacity granularity in floats (kAlignment / sizeof(float)).
  static constexpr size_t kPadFloats = kAlignment / sizeof(float);

  AlignedBuffer() = default;
  /// Zero-filled buffer of n floats.
  explicit AlignedBuffer(size_t n) { resize(n); }

  AlignedBuffer(const AlignedBuffer& other) { assign(other.begin(), other.end()); }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  ~AlignedBuffer() { Free(); }

  float* data() { return data_; }
  const float* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  float* begin() { return data_; }
  float* end() { return data_ + size_; }
  const float* begin() const { return data_; }
  const float* end() const { return data_ + size_; }

  /// Grows or shrinks to n elements, preserving the common prefix and
  /// zero-filling any newly exposed tail (std::vector::resize semantics).
  void resize(size_t n) {
    if (n > capacity_) Reallocate(n);
    if (n > size_) std::fill(data_ + size_, data_ + n, 0.0f);
    size_ = n;
  }

  /// Replaces the contents with the range [first, last).
  void assign(const float* first, const float* last) {
    const size_t n = static_cast<size_t>(last - first);
    if (n > capacity_) {
      Free();
      AllocateExactly(n);
    }
    std::copy(first, last, data_);
    size_ = n;
  }

 private:
  static size_t PaddedCount(size_t n) {
    return (n + kPadFloats - 1) / kPadFloats * kPadFloats;
  }

  void AllocateExactly(size_t n) {
    capacity_ = PaddedCount(n);
    data_ = capacity_ == 0
                ? nullptr
                : static_cast<float*>(::operator new(
                      capacity_ * sizeof(float), std::align_val_t(kAlignment)));
  }

  /// Grows the backing store, copying the live prefix.
  void Reallocate(size_t n) {
    float* old = data_;
    const size_t old_size = size_;
    AllocateExactly(n);
    if (old != nullptr) {
      std::copy(old, old + old_size, data_);
      ::operator delete(old, std::align_val_t(kAlignment));
    }
  }

  void Free() {
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t(kAlignment));
      data_ = nullptr;
    }
    size_ = 0;
    capacity_ = 0;
  }

  float* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace prestroid

#endif  // PRESTROID_TENSOR_ALIGNED_BUFFER_H_
