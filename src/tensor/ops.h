#ifndef PRESTROID_TENSOR_OPS_H_
#define PRESTROID_TENSOR_OPS_H_

#include "tensor/tensor.h"

namespace prestroid {

/// Matrix multiply: a is [m, k], b is [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// MatMul where `a` is transposed: a is [k, m], b is [k, n] -> [m, n].
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);

/// MatMul where `b` is transposed: a is [m, k], b is [n, k] -> [m, n].
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& a);

/// Elementwise arithmetic; shapes must match exactly.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);

/// Adds row-vector `bias` [n] to every row of `a` [m, n].
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);

/// Column-wise sum of a rank-2 tensor: [m, n] -> [n].
Tensor SumRows(const Tensor& a);

/// Row-wise mean of a rank-2 tensor: [m, n] -> [n] (mean over axis 0).
Tensor MeanRows(const Tensor& a);

/// Elementwise max over axis 0 of rank-2 tensor: [m, n] -> [n].
Tensor MaxRows(const Tensor& a);

/// Elementwise min over axis 0 of rank-2 tensor: [m, n] -> [n].
Tensor MinRows(const Tensor& a);

/// Elementwise unary helpers.
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor TanhT(const Tensor& a);

}  // namespace prestroid

#endif  // PRESTROID_TENSOR_OPS_H_
