#ifndef PRESTROID_TENSOR_OPS_H_
#define PRESTROID_TENSOR_OPS_H_

#include "tensor/execution_context.h"
#include "tensor/tensor.h"

namespace prestroid {

/// Matrix multiply: a is [m, k], b is [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);

/// MatMul where `a` is transposed: a is [k, m], b is [k, n] -> [m, n].
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);

/// MatMul where `b` is transposed: a is [m, k], b is [n, k] -> [m, n].
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& a);

/// Elementwise arithmetic; shapes must match exactly.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);

/// Adds row-vector `bias` [n] to every row of `a` [m, n].
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);

/// Column-wise sum of a rank-2 tensor: [m, n] -> [n].
Tensor SumRows(const Tensor& a);

/// Row-wise mean of a rank-2 tensor: [m, n] -> [n] (mean over axis 0).
Tensor MeanRows(const Tensor& a);

/// Elementwise max over axis 0 of rank-2 tensor: [m, n] -> [n].
Tensor MaxRows(const Tensor& a);

/// Elementwise min over axis 0 of rank-2 tensor: [m, n] -> [n].
Tensor MinRows(const Tensor& a);

/// Elementwise unary helpers.
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor TanhT(const Tensor& a);

// ---------------------------------------------------------------------------
// Destination-passing variants.
//
// Each *Into op writes its result into `out`, resizing it via ResetShape
// (allocation-free once the workspace is warm), and routes work through
// `ctx`: kernels parallelize over independent output rows with the context's
// ParallelFor, and the context's flop/op counters are updated. `ctx` may be
// null, which means serial execution with no counters.
//
// The GEMM-family ops dispatch through the context's KernelRegistry to one
// of two backends (tensor/kernels/): the historical `scalar` loops or the
// register-tiled `blocked` micro-kernels. A null ctx always runs scalar.
//
// Determinism contract (DESIGN.md §5.2-§5.3): within EITHER backend, every
// parallel kernel preserves the per-element floating-point accumulation
// order of its serial counterpart (reductions always run k-ascending for
// each output element), so results are bit-identical to serial at ANY
// thread count, not merely close. Across backends the accumulation order
// differs (register blocking vs zero-skip scalar), so scalar and blocked
// agree to ~1e-5 relative, with `scalar` reproducing the pre-kernel-layer
// releases bit-for-bit. The return-by-value ops above are thin wrappers
// over these.
// ---------------------------------------------------------------------------

/// out = a @ b. Cache-blocked over the reduction dim, parallel over rows.
void MatMulInto(Tensor* out, const Tensor& a, const Tensor& b,
                ExecutionContext* ctx);

/// out = a @ b + bias (row broadcast), fused into the GEMM epilogue. On the
/// scalar backend this is bit-identical to MatMulInto followed by
/// AddRowBroadcastInPlace (same per-element float order), with one pass
/// fewer over `out`.
void MatMulBiasInto(Tensor* out, const Tensor& a, const Tensor& b,
                    const Tensor& bias, ExecutionContext* ctx);

/// out = max(0, a @ b + bias): the bias+ReLU epilogue fused likewise.
void MatMulBiasReluInto(Tensor* out, const Tensor& a, const Tensor& b,
                        const Tensor& bias, ExecutionContext* ctx);

/// out = a^T @ b (a is [k, m], b is [k, n]).
void MatMulTransposeAInto(Tensor* out, const Tensor& a, const Tensor& b,
                          ExecutionContext* ctx);

/// out += a^T @ b. `out` must already be [m, n]; used for gradient
/// accumulation across subtrees/timesteps without a temp tensor.
void MatMulTransposeAAccumulate(Tensor* out, const Tensor& a, const Tensor& b,
                                ExecutionContext* ctx);

/// out = a @ b^T (a is [m, k], b is [n, k]).
void MatMulTransposeBInto(Tensor* out, const Tensor& a, const Tensor& b,
                          ExecutionContext* ctx);

/// out = a^T, blocked for cache locality, parallel over source rows.
void TransposeInto(Tensor* out, const Tensor& a, ExecutionContext* ctx);

/// Elementwise into-variants; `out` may not alias the inputs except where
/// noted. AddRowBroadcastInPlace mutates `a` directly (the common case after
/// a MatMulInto).
void AddInto(Tensor* out, const Tensor& a, const Tensor& b,
             ExecutionContext* ctx);
void MulInto(Tensor* out, const Tensor& a, const Tensor& b,
             ExecutionContext* ctx);
void AddRowBroadcastInPlace(Tensor* a, const Tensor& bias,
                            ExecutionContext* ctx);

/// out += column-wise sum of `a` ([m, n] -> [n]); parallel over columns, row
/// order preserved per column. `out` must already be [n].
void SumRowsAccumulate(Tensor* out, const Tensor& a, ExecutionContext* ctx);

/// Elementwise activations into a workspace; `out` may alias `a`.
void ReluInto(Tensor* out, const Tensor& a, ExecutionContext* ctx);
void SigmoidInto(Tensor* out, const Tensor& a, ExecutionContext* ctx);
void TanhInto(Tensor* out, const Tensor& a, ExecutionContext* ctx);

}  // namespace prestroid

#endif  // PRESTROID_TENSOR_OPS_H_
