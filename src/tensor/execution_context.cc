#include "tensor/execution_context.h"

#include <algorithm>

namespace prestroid {

ExecutionContext::ExecutionContext(size_t num_threads) {
  if (num_threads == 0) num_threads = ThreadPool::HardwareConcurrency();
  if (num_threads > 1) pool_ = std::make_unique<ThreadPool>(num_threads);
}

ExecutionContext::~ExecutionContext() = default;

std::vector<std::pair<size_t, size_t>> ExecutionContext::Partition(
    size_t begin, size_t end, size_t grain) const {
  if (pool_) return pool_->Partition(begin, end, grain);
  std::vector<std::pair<size_t, size_t>> one;
  if (end > begin) one.emplace_back(begin, end);
  return one;
}

void ExecutionContext::ParallelFor(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  if (pool_) {
    pool_->ParallelFor(begin, end, grain, fn);
  } else {
    fn(begin, end);
  }
}

Tensor ExecutionContext::AcquireScratch(const std::vector<size_t>& shape) {
  const size_t needed = ShapeSize(shape);
  // Best fit among recycled buffers: smallest capacity that still holds
  // `needed`, so big buffers stay available for big requests.
  size_t best = free_scratch_.size();
  for (size_t i = 0; i < free_scratch_.size(); ++i) {
    if (free_scratch_[i].capacity() < needed) continue;
    if (best == free_scratch_.size() ||
        free_scratch_[i].capacity() < free_scratch_[best].capacity()) {
      best = i;
    }
  }
  Tensor out;
  if (best < free_scratch_.size()) {
    out = std::move(free_scratch_[best]);
    free_scratch_.erase(free_scratch_.begin() +
                        static_cast<std::ptrdiff_t>(best));
    out.ResetShape(shape);
  } else {
    out.ResetShape(shape);
    stats_.scratch_bytes_allocated += needed * sizeof(float);
  }
  out.Fill(0.0f);
  live_scratch_bytes_ += needed * sizeof(float);
  stats_.peak_scratch_bytes =
      std::max<uint64_t>(stats_.peak_scratch_bytes, live_scratch_bytes_);
  return out;
}

void ExecutionContext::ReleaseScratch(Tensor tensor) {
  const uint64_t bytes = static_cast<uint64_t>(tensor.size()) * sizeof(float);
  live_scratch_bytes_ = bytes > live_scratch_bytes_
                            ? 0
                            : live_scratch_bytes_ - bytes;
  free_scratch_.push_back(std::move(tensor));
}

ExecutionContext* ExecutionContext::Serial() {
  static ExecutionContext* serial = new ExecutionContext(1);
  return serial;
}

}  // namespace prestroid
