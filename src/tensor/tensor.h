#ifndef PRESTROID_TENSOR_TENSOR_H_
#define PRESTROID_TENSOR_TENSOR_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "tensor/aligned_buffer.h"
#include "util/random.h"

namespace prestroid {

/// Dense, row-major float32 tensor. This is the numeric substrate for the
/// from-scratch neural-network library (the paper used TensorFlow; we build
/// the equivalent math on CPU — see DESIGN.md substitution table).
///
/// Storage is 64-byte aligned (AlignedBuffer), so data() of every tensor is
/// a valid SIMD-aligned base pointer for the blocked kernels.
///
/// Copyable and movable; copies are deep.
class Tensor {
 public:
  /// Empty (rank-0, no elements) tensor.
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<size_t> shape);
  Tensor(std::initializer_list<size_t> shape);

  /// Builds a tensor with explicit contents. data.size() must equal the
  /// product of shape.
  Tensor(std::vector<size_t> shape, std::vector<float> data);

  /// Factory helpers.
  static Tensor Zeros(std::vector<size_t> shape);
  static Tensor Ones(std::vector<size_t> shape);
  static Tensor Full(std::vector<size_t> shape, float value);
  /// Uniform in [lo, hi).
  static Tensor Random(std::vector<size_t> shape, Rng* rng, float lo = -1.0f,
                       float hi = 1.0f);
  /// Gaussian with the given parameters.
  static Tensor RandomNormal(std::vector<size_t> shape, Rng* rng,
                             float mean = 0.0f, float stddev = 1.0f);
  /// Glorot/Xavier-uniform init for a [fan_in, fan_out] weight matrix.
  static Tensor GlorotUniform(size_t fan_in, size_t fan_out, Rng* rng);

  const std::vector<size_t>& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t dim(size_t axis) const;
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }

  /// 2-D element access (row-major). Requires rank() == 2.
  float& At(size_t r, size_t c);
  float At(size_t r, size_t c) const;
  /// 3-D element access. Requires rank() == 3.
  float& At(size_t i, size_t j, size_t k);
  float At(size_t i, size_t j, size_t k) const;

  /// Returns a reshaped deep COPY of this tensor (the data is duplicated,
  /// not aliased); total size must be preserved. Hot paths that only need to
  /// relabel the shape should use ReshapeInPlace instead.
  Tensor Reshape(std::vector<size_t> new_shape) const;

  /// Relabels the shape without touching the data. No allocation, no copy;
  /// total size must be preserved.
  void ReshapeInPlace(std::vector<size_t> new_shape);

  /// Resizes to `new_shape`, reusing existing capacity when possible.
  /// Element values are unspecified afterwards (workspace semantics); use
  /// Fill(0) if zeros are required.
  void ResetShape(const std::vector<size_t>& new_shape);

  /// Makes this tensor an exact copy of `other`, reusing existing capacity
  /// when possible (allocation-free once warm).
  void CopyFrom(const Tensor& other);

  /// Elements the underlying buffer can hold without reallocating.
  size_t capacity() const { return data_.capacity(); }

  /// Sets every element to `value`.
  void Fill(float value);

  /// In-place elementwise updates.
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  /// Sum / mean / min / max over all elements.
  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;

  /// Approximate equality for tests.
  bool AllClose(const Tensor& other, float atol = 1e-5f) const;

  /// Debug rendering: "Tensor[2,3]{...}" with up to `max_elems` values.
  std::string ToString(size_t max_elems = 16) const;

 private:
  std::vector<size_t> shape_;
  AlignedBuffer data_;
};

/// Number of elements implied by a shape.
size_t ShapeSize(const std::vector<size_t>& shape);

/// Pretty "[a, b, c]" rendering of a shape.
std::string ShapeToString(const std::vector<size_t>& shape);

}  // namespace prestroid

#endif  // PRESTROID_TENSOR_TENSOR_H_
