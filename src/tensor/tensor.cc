#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/logging.h"

namespace prestroid {

size_t ShapeSize(const std::vector<size_t>& shape) {
  size_t total = 1;
  for (size_t d : shape) total *= d;
  return shape.empty() ? 0 : total;
}

std::string ShapeToString(const std::vector<size_t>& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(ShapeSize(shape_)) {}

Tensor::Tensor(std::initializer_list<size_t> shape)
    : Tensor(std::vector<size_t>(shape)) {}

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)) {
  PRESTROID_CHECK_EQ(data.size(), ShapeSize(shape_));
  data_.assign(data.data(), data.data() + data.size());
}

Tensor Tensor::Zeros(std::vector<size_t> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(std::vector<size_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Random(std::vector<size_t> shape, Rng* rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::RandomNormal(std::vector<size_t> shape, Rng* rng, float mean,
                            float stddev) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Gaussian(mean, stddev));
  }
  return t;
}

Tensor Tensor::GlorotUniform(size_t fan_in, size_t fan_out, Rng* rng) {
  float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Random({fan_in, fan_out}, rng, -limit, limit);
}

size_t Tensor::dim(size_t axis) const {
  PRESTROID_CHECK_LT(axis, shape_.size());
  return shape_[axis];
}

float& Tensor::At(size_t r, size_t c) {
  PRESTROID_CHECK_EQ(rank(), 2u);
  return data_[r * shape_[1] + c];
}

float Tensor::At(size_t r, size_t c) const {
  PRESTROID_CHECK_EQ(rank(), 2u);
  return data_[r * shape_[1] + c];
}

float& Tensor::At(size_t i, size_t j, size_t k) {
  PRESTROID_CHECK_EQ(rank(), 3u);
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

float Tensor::At(size_t i, size_t j, size_t k) const {
  PRESTROID_CHECK_EQ(rank(), 3u);
  return data_[(i * shape_[1] + j) * shape_[2] + k];
}

Tensor Tensor::Reshape(std::vector<size_t> new_shape) const {
  PRESTROID_CHECK_EQ(ShapeSize(new_shape), size());
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::ReshapeInPlace(std::vector<size_t> new_shape) {
  PRESTROID_CHECK_EQ(ShapeSize(new_shape), size());
  shape_ = std::move(new_shape);
}

void Tensor::ResetShape(const std::vector<size_t>& new_shape) {
  shape_ = new_shape;
  data_.resize(ShapeSize(shape_));
}

void Tensor::CopyFrom(const Tensor& other) {
  shape_ = other.shape_;
  data_.assign(other.data_.begin(), other.data_.end());
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  PRESTROID_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  PRESTROID_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  for (float& v : data_) v *= scalar;
  return *this;
}

float Tensor::Sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::Mean() const {
  PRESTROID_CHECK(!data_.empty());
  return Sum() / static_cast<float>(data_.size());
}

float Tensor::Min() const {
  PRESTROID_CHECK(!data_.empty());
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Max() const {
  PRESTROID_CHECK(!data_.empty());
  return *std::max_element(data_.begin(), data_.end());
}

bool Tensor::AllClose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

std::string Tensor::ToString(size_t max_elems) const {
  std::ostringstream os;
  os << "Tensor" << ShapeToString(shape_) << "{";
  size_t n = std::min(max_elems, data_.size());
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  if (n < data_.size()) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace prestroid
