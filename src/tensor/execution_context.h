#ifndef PRESTROID_TENSOR_EXECUTION_CONTEXT_H_
#define PRESTROID_TENSOR_EXECUTION_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "tensor/kernels/kernel_registry.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace prestroid {

/// Cumulative per-context execution counters. Monotonic except through
/// ResetStats; cheap enough to leave on unconditionally.
struct ExecStats {
  /// Floating-point operations issued by the tensor kernels (multiply-add
  /// counts as two).
  uint64_t flops = 0;
  /// Number of kernel invocations routed through this context.
  uint64_t op_invocations = 0;
  /// Total bytes of scratch tensors ever allocated by the arena.
  uint64_t scratch_bytes_allocated = 0;
  /// High-water mark of simultaneously checked-out scratch bytes.
  uint64_t peak_scratch_bytes = 0;
};

/// Shared execution state threaded through the numeric stack: a thread pool
/// for ParallelFor kernels, a scratch-tensor arena that recycles workspace
/// buffers across batches, and per-op counters.
///
/// One context is constructed per pipeline (or per serving estimator, where
/// it defaults to 1 thread for predictable latency) and handed down by raw
/// pointer — layers never own it. A context with num_threads() == 1 runs
/// every kernel inline with the exact serial loop order, which is what makes
/// `threads=1` bit-identical to the pre-context substrate.
///
/// Threading contract: the scratch arena and the counters are owned by the
/// launching thread. Kernels running inside ParallelFor chunks must not call
/// AcquireScratch/ReleaseScratch or the Add* counters; callers acquire
/// scratch and tally flops before/after the parallel region instead.
class ExecutionContext {
 public:
  /// num_threads == 0 picks the hardware concurrency; 1 spawns no workers.
  explicit ExecutionContext(size_t num_threads = 1);
  ~ExecutionContext();

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  size_t num_threads() const { return pool_ ? pool_->num_threads() : 1; }

  /// Deterministic static partition of [begin, end); see ThreadPool.
  std::vector<std::pair<size_t, size_t>> Partition(size_t begin, size_t end,
                                                   size_t grain) const;

  /// Runs fn over the static partition of [begin, end). With one thread (or
  /// a single chunk) this is an inline call to fn(begin, end).
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Checks a zero-filled tensor of the given shape out of the arena,
  /// recycling a previously released buffer when one is large enough.
  /// Launching thread only.
  Tensor AcquireScratch(const std::vector<size_t>& shape);

  /// Returns a scratch tensor to the arena for reuse.
  void ReleaseScratch(Tensor tensor);

  /// Per-op kernel-backend choices for ops routed through this context
  /// (scalar reference vs blocked SIMD; see tensor/kernels/). Ops called
  /// with a null context always take the scalar path.
  const KernelRegistry& kernels() const { return kernels_; }
  KernelRegistry* mutable_kernels() { return &kernels_; }

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats{}; }
  void AddFlops(uint64_t flops) { stats_.flops += flops; }
  void AddOp() { ++stats_.op_invocations; }

  /// Process-wide serial (1-thread) context for layers that were never bound
  /// to a pipeline context. Its stats are shared; callers that care about
  /// counters should bind their own context.
  static ExecutionContext* Serial();

 private:
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1
  KernelRegistry kernels_;
  std::vector<Tensor> free_scratch_;
  uint64_t live_scratch_bytes_ = 0;
  ExecStats stats_;
};

}  // namespace prestroid

#endif  // PRESTROID_TENSOR_EXECUTION_CONTEXT_H_
