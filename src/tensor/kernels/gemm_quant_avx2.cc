// AVX2+FMA instantiation of the low-precision GEMM kernels. Compiled with
// -mavx2 -mfma (src/CMakeLists.txt); nothing outside this TU may inline its
// code. gemm_quant.cc dispatches here at runtime when the CPU qualifies.

#include "tensor/kernels/gemm_quant.h"

#include <vector>

#define PRESTROID_GEMM_ISA_NS quant_avx2
#include "tensor/kernels/gemm_quant_impl.inc"
#undef PRESTROID_GEMM_ISA_NS
