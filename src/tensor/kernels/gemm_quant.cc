// Low-precision GEMM: baseline-ISA instantiation plus the runtime dispatch
// into the AVX2 TU (gemm_quant_avx2.cc). Mirrors the gemm_blocked.cc two-TU
// scheme: this file is always compiled at the build's baseline ISA so the
// binary runs on any x86-64 (or non-x86) machine, and per-call dispatch picks
// the AVX2 instantiation when the blocked-GEMM probe resolved to "avx2" —
// one source of truth for both the CPUID check and the PRESTROID_GEMM_ISA
// environment override.

#include "tensor/kernels/gemm_quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#define PRESTROID_GEMM_ISA_NS quant_base
#include "tensor/kernels/gemm_quant_impl.inc"
#undef PRESTROID_GEMM_ISA_NS

#if defined(PRESTROID_QUANT_AVX2_TU)
namespace prestroid {
namespace quant_avx2 {
// Compiled in gemm_quant_avx2.cc with -mavx2 -mfma.
void GemmInt8Rows(size_t i0, size_t i1, size_t k, size_t n, const int8_t* a,
                  const int8_t* b, const float* scale, const float* bias,
                  GemmEpilogue epilogue, float* c, size_t ldc);
void GemmBf16Rows(size_t i0, size_t i1, size_t k, size_t n, const float* a,
                  const uint16_t* b, const float* bias, GemmEpilogue epilogue,
                  float* c, size_t ldc);
}  // namespace quant_avx2
}  // namespace prestroid
#endif

namespace prestroid {

namespace {

bool UseQuantAvx2() {
#if defined(PRESTROID_QUANT_AVX2_TU)
  // Reuse the blocked-GEMM ISA resolution (CPUID probe + PRESTROID_GEMM_ISA
  // override) so the whole kernel tier switches ISAs together.
  static const bool use = std::strcmp(GemmBlockedIsaName(), "avx2") == 0;
  return use;
#else
  return false;
#endif
}

}  // namespace

float AbsMax(const float* data, size_t count) {
  float best = 0.0f;
  for (size_t i = 0; i < count; ++i) {
    const float v = std::fabs(data[i]);
    if (v > best) best = v;
  }
  return best;
}

void QuantizeSymmetric(const float* src, size_t count, float inv_scale,
                       int8_t* dst) {
  for (size_t i = 0; i < count; ++i) {
    const float scaled = src[i] * inv_scale;
    // lrintf honors round-to-nearest-even; the clamp makes the symmetric
    // range [-127, 127] (never -128, keeping |q| * |q| bounded uniformly).
    long q = std::lrintf(scaled);
    if (q > 127) q = 127;
    if (q < -127) q = -127;
    dst[i] = static_cast<int8_t>(q);
  }
}

void PackInt8PairsB(size_t k, size_t n, const float* w,
                    const float* channel_scale, int8_t* packed) {
  const size_t k_pad = (k + 1) & ~static_cast<size_t>(1);
  for (size_t p = 0; p < k_pad / 2; ++p) {
    int8_t* prow = packed + p * 2 * n;
    for (size_t half = 0; half < 2; ++half) {
      const size_t kk = 2 * p + half;
      if (kk >= k) {  // odd-k pad row: contributes exactly zero
        for (size_t j = 0; j < n; ++j) prow[2 * j + half] = 0;
        continue;
      }
      const float* row = w + kk * n;
      for (size_t j = 0; j < n; ++j) {
        const float s = channel_scale[j];
        // s == 0 means the whole output channel is zero weight.
        const float inv = s > 0.0f ? 1.0f / s : 0.0f;
        long q = std::lrintf(row[j] * inv);
        if (q > 127) q = 127;
        if (q < -127) q = -127;
        prow[2 * j + half] = static_cast<int8_t>(q);
      }
    }
  }
}

void GemmInt8Rows(size_t i0, size_t i1, size_t k, size_t n, const int8_t* a,
                  const int8_t* b, const float* scale, const float* bias,
                  GemmEpilogue epilogue, float* c, size_t ldc) {
#if defined(PRESTROID_QUANT_AVX2_TU)
  if (UseQuantAvx2()) {
    quant_avx2::GemmInt8Rows(i0, i1, k, n, a, b, scale, bias, epilogue, c,
                             ldc);
    return;
  }
#endif
  quant_base::GemmInt8Rows(i0, i1, k, n, a, b, scale, bias, epilogue, c, ldc);
}

void GemmBf16Rows(size_t i0, size_t i1, size_t k, size_t n, const float* a,
                  const uint16_t* b, const float* bias, GemmEpilogue epilogue,
                  float* c, size_t ldc) {
#if defined(PRESTROID_QUANT_AVX2_TU)
  if (UseQuantAvx2()) {
    quant_avx2::GemmBf16Rows(i0, i1, k, n, a, b, bias, epilogue, c, ldc);
    return;
  }
#endif
  quant_base::GemmBf16Rows(i0, i1, k, n, a, b, bias, epilogue, c, ldc);
}

}  // namespace prestroid
