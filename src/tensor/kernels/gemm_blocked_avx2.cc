// AVX2+FMA instantiation of the blocked GEMM kernel (4x24 ymm micro-tile).
// Compiled with -O3 -mavx2 -mfma on x86-64 builds only (src/CMakeLists.txt);
// nothing here executes unless gemm_blocked.cc's CPUID dispatch selects it,
// so shipping this TU in a baseline build is safe on pre-AVX2 hardware.
#define PRESTROID_GEMM_ISA_NS gemm_avx2
#include "tensor/kernels/gemm_blocked_impl.inc"
#undef PRESTROID_GEMM_ISA_NS
