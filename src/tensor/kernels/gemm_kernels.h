#ifndef PRESTROID_TENSOR_KERNELS_GEMM_KERNELS_H_
#define PRESTROID_TENSOR_KERNELS_GEMM_KERNELS_H_

#include <cstddef>

namespace prestroid {

/// Fused tail applied while the accumulators are still in registers, saving a
/// second pass over the output matrix.
enum class GemmEpilogue {
  kNone,      // C = A @ B
  kBias,      // C = A @ B + bias (row broadcast)
  kBiasRelu,  // C = max(0, A @ B + bias)
};

// ---------------------------------------------------------------------------
// Scalar reference kernels (gemm_scalar.cc).
//
// These are the historical ops.cc loop bodies, hoisted verbatim so the
// "scalar" backend stays bit-for-bit identical to every pre-kernel-layer
// release: same zero-skip fast path, same k-tiling, same per-element
// accumulation order. Row/column ranges mirror the ParallelFor chunking the
// ops layer has always used. Do not "optimize" these — they are the
// reproducibility baseline (DESIGN.md §5.2).
// ---------------------------------------------------------------------------

/// Rows [i0, i1) of C = A @ B (+ epilogue). A is [m, k] row-major, B is
/// [k, n] row-major, C is [m, n]. `bias` ([n]) may be null when `epilogue`
/// is kNone. The bias is added in a separate pass after the accumulation,
/// exactly matching the historical MatMul-then-AddRowBroadcast float order.
void GemmScalarRows(size_t i0, size_t i1, size_t k, size_t n, const float* a,
                    const float* b, float* c, const float* bias,
                    GemmEpilogue epilogue);

/// Columns-of-A rows-of-C [i0, i1) of C += A^T @ B. A is [k, m], B is
/// [k, n], C is [m, n]. Accumulates (caller zeroes C for the non-accumulate
/// form). kk-outer loop order, as always.
void GemmTransposeAScalarCols(size_t i0, size_t i1, size_t k, size_t m,
                              size_t n, const float* a, const float* b,
                              float* c);

/// Rows [i0, i1) of C = A @ B^T. A is [m, k], B is [n, k], C is [m, n].
/// Dot-product reduction per output element.
void GemmTransposeBScalarRows(size_t i0, size_t i1, size_t k, size_t n,
                              const float* a, const float* b, float* c);

// ---------------------------------------------------------------------------
// Blocked kernels (gemm_blocked.cc).
//
// Register-tiled MR x NR micro-kernel over panels of B packed column-strip
// by column-strip ([strip][kk][jj] with jj contiguous, zero-padded to NR) and
// per-tile packed A ([kk][ii], zero-padded to MR). The micro-kernel keeps an
// MR x NR accumulator block in registers across the full reduction, so every
// output element accumulates k-ascending — results are bit-identical across
// thread counts and chunk boundaries (only scalar-vs-blocked differs, at
// ~1e-5 relative; DESIGN.md §5.3).
//
// Strides (`rs*` = stride between reduction steps, `cs*` = stride between
// rows/columns) let the same kernel serve A, A^T and B^T operand layouts
// without materializing transposes. No data-dependent branches: zeros get
// multiplied like any other value, so measured GFLOP/s reflect true work.
// ---------------------------------------------------------------------------

/// Row-tile height MR of the blocked micro-kernel (ISA-dependent).
size_t GemmBlockedRowTile();

/// Which instantiation the one-time CPUID dispatch selected for this process:
/// "avx2" or "base". Stamped into BENCH_*.json provenance so kernel numbers
/// are comparable across machines.
const char* GemmBlockedIsaName();

/// Floats needed for a packed image of B ([k, n] logical): n rounded up to
/// the panel width NR.
size_t GemmPackedBSize(size_t k, size_t n);

/// Packs logical B ([k, n], element (kk, j) at b[kk * rsb + j * csb]) into
/// `packed` (size >= GemmPackedBSize(k, n)). Pass (rsb=ldb, csb=1) for
/// row-major B and (rsb=1, csb=ldb) for B^T. Padding columns are zeroed.
void GemmPackB(size_t k, size_t n, const float* b, size_t rsb, size_t csb,
               float* packed);

/// Rows [i0, i1) of C (+)= A @ B_packed (+ epilogue). Logical A is [m, k]
/// with element (i, kk) at a[i * rsa + kk * csa]; pass (rsa=lda, csa=1) for
/// row-major A and (rsa=1, csa=lda) for A^T. C is row-major with leading
/// dimension `ldc`. With `accumulate` the k-complete register block is added
/// onto C (epilogue must be kNone). Safe to call concurrently on disjoint
/// row ranges; uses a thread-local pack buffer for A tiles.
void GemmBlockedRows(size_t i0, size_t i1, size_t k, size_t n, const float* a,
                     size_t rsa, size_t csa, const float* packed_b, float* c,
                     size_t ldc, const float* bias, GemmEpilogue epilogue,
                     bool accumulate);

}  // namespace prestroid

#endif  // PRESTROID_TENSOR_KERNELS_GEMM_KERNELS_H_
