#ifndef PRESTROID_TENSOR_KERNELS_GEMM_QUANT_H_
#define PRESTROID_TENSOR_KERNELS_GEMM_QUANT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "tensor/kernels/gemm_kernels.h"

namespace prestroid {

// ---------------------------------------------------------------------------
// Low-precision GEMM kernels (gemm_quant.cc) — the compute substrate of the
// resident-weight inference tier (resident_weights.h). These are row-range
// kernels in the same shape as GemmScalarRows/GemmBlockedRows: safe to call
// concurrently on disjoint row ranges, and every output element accumulates
// k-ascending, so results are bit-identical across thread counts and chunk
// boundaries (DESIGN.md §5.2/§5.8).
// ---------------------------------------------------------------------------

/// fp32 -> bfloat16: the high 16 bits of the float pattern, rounded to
/// nearest-even (the tie-break LSB trick; NaNs stay NaN because rounding
/// cannot clear a set mantissa MSB into the exponent).
inline uint16_t FloatToBf16(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  const uint32_t rounding = 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<uint16_t>((bits + rounding) >> 16);
}

/// bfloat16 -> fp32: exact (bf16 values are a subset of fp32).
inline float Bf16ToFloat(uint16_t v) {
  const uint32_t bits = static_cast<uint32_t>(v) << 16;
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

/// Largest |x| over `count` floats (0 for count == 0).
float AbsMax(const float* data, size_t count);

/// Symmetric int8 quantization: q = clamp(round(v * inv_scale), -127, 127).
/// inv_scale == 0 (an all-zero or unscaled tensor) writes all zeros.
void QuantizeSymmetric(const float* src, size_t count, float inv_scale,
                       int8_t* dst);

/// Bytes/elements of the pair-interleaved int8 B image for [k, n] weights:
/// k rounded up to even, consumed two reduction rows at a time.
inline size_t Int8PairPackedSize(size_t k, size_t n) {
  return ((k + 1) & ~static_cast<size_t>(1)) * n;
}

/// Quantizes row-major fp32 weights [k, n] into the pair-interleaved int8
/// layout GemmInt8Rows consumes: pair-row p holds 2n bytes with
/// (q[2p][j], q[2p+1][j]) adjacent at packed[p*2n + 2j]. Odd k appends an
/// all-zero pad row (contributes exactly nothing). channel_scale[j] is the
/// per-output-channel scale (0 for an all-zero channel); `packed` must hold
/// Int8PairPackedSize(k, n) bytes.
void PackInt8PairsB(size_t k, size_t n, const float* w,
                    const float* channel_scale, int8_t* packed);

/// Rows [i0, i1) of C = dequant(Aq @ Bq) (+ bias)(+ ReLU). Aq is [m, k]
/// row-major int8 with k EVEN (zero-pad activations for odd reductions); Bq
/// is the pair-interleaved image from PackInt8PairsB. C is [m, n] fp32 with
/// leading dimension ldc. Accumulation is exact int32 (|acc| <= 127*127*k,
/// safe for k up to ~2^17), bit-identical across ISAs and thread counts
/// (the fp32 dequant may vary by one ulp across ISA builds); the fused epilogue
/// applies the per-output-channel dequantization scale[j]
/// (= a_scale * w_scale[j]), then bias, then ReLU — one pass while the
/// accumulators are hot. `bias` may be null for kNone. The AVX2 path
/// (dispatched like the blocked fp32 kernel) runs the reduction on vpmaddwd.
void GemmInt8Rows(size_t i0, size_t i1, size_t k, size_t n, const int8_t* a,
                  const int8_t* b, const float* scale, const float* bias,
                  GemmEpilogue epilogue, float* c, size_t ldc);

/// Rows [i0, i1) of C = A @ expand(Bh) (+ bias)(+ ReLU). A is [m, k] fp32
/// row-major, Bh is [k, n] row-major bfloat16 expanded on the fly, C is
/// [m, n] fp32 with leading dimension ldc. Accumulation is fp32,
/// k-ascending.
void GemmBf16Rows(size_t i0, size_t i1, size_t k, size_t n, const float* a,
                  const uint16_t* b, const float* bias, GemmEpilogue epilogue,
                  float* c, size_t ldc);

}  // namespace prestroid

#endif  // PRESTROID_TENSOR_KERNELS_GEMM_QUANT_H_
