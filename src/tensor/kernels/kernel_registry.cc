#include "tensor/kernels/kernel_registry.h"

#include <cstdlib>

namespace prestroid {

KernelRegistry::KernelRegistry() { backends_.fill(DefaultBackend()); }

KernelBackend KernelRegistry::DefaultBackend() {
  static const KernelBackend resolved = [] {
    const char* env = std::getenv("PRESTROID_KERNEL");
    if (env != nullptr) {
      std::optional<KernelBackend> parsed = ParseBackend(env);
      if (parsed.has_value()) return *parsed;
    }
    return KernelBackend::kBlocked;
  }();
  return resolved;
}

const char* KernelRegistry::BackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kBlocked:
      return "blocked";
  }
  return "unknown";
}

std::optional<KernelBackend> KernelRegistry::ParseBackend(
    const std::string& name) {
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "blocked") return KernelBackend::kBlocked;
  return std::nullopt;
}

}  // namespace prestroid
