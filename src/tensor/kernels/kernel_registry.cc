#include "tensor/kernels/kernel_registry.h"

#include <cstdlib>

namespace prestroid {

KernelRegistry::KernelRegistry() { backends_.fill(DefaultBackend()); }

KernelBackend KernelRegistry::DefaultBackend() {
  static const KernelBackend resolved = [] {
    const char* env = std::getenv("PRESTROID_KERNEL");
    if (env != nullptr) {
      std::optional<KernelBackend> parsed = ParseBackend(env);
      if (parsed.has_value()) return *parsed;
    }
    return KernelBackend::kBlocked;
  }();
  return resolved;
}

Status KernelRegistry::ValidateEnv() {
  const char* env = std::getenv("PRESTROID_KERNEL");
  if (env == nullptr || ParseBackend(env).has_value()) return Status::OK();
  return Status::InvalidArgument(
      std::string("unrecognized PRESTROID_KERNEL value \"") + env +
      "\"; accepted values: scalar, blocked");
}

const char* KernelRegistry::BackendName(KernelBackend backend) {
  switch (backend) {
    case KernelBackend::kScalar:
      return "scalar";
    case KernelBackend::kBlocked:
      return "blocked";
  }
  return "unknown";
}

std::optional<KernelBackend> KernelRegistry::ParseBackend(
    const std::string& name) {
  if (name == "scalar") return KernelBackend::kScalar;
  if (name == "blocked") return KernelBackend::kBlocked;
  return std::nullopt;
}

const char* KernelRegistry::PrecisionName(Precision precision) {
  switch (precision) {
    case Precision::kFp32:
      return "fp32";
    case Precision::kBf16:
      return "bf16";
    case Precision::kInt8:
      return "int8";
  }
  return "unknown";
}

std::optional<Precision> KernelRegistry::ParsePrecision(
    const std::string& name) {
  if (name == "fp32") return Precision::kFp32;
  if (name == "bf16") return Precision::kBf16;
  if (name == "int8") return Precision::kInt8;
  return std::nullopt;
}

}  // namespace prestroid
