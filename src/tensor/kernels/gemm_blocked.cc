// Blocked-GEMM entry points: the baseline-ISA instantiation of the tiled
// kernel plus the runtime ISA dispatcher. The kernel body itself lives in
// gemm_blocked_impl.inc, compiled here at the build's default ISA and again
// in gemm_blocked_avx2.cc at -mavx2 -mfma (x86-64 builds only). Dispatch is
// decided once per process from CPUID, so all four entry points — tile,
// packed size, pack, compute — always agree on the micro-tile geometry.
//
// Determinism: a given process always runs one instantiation, so results
// stay bit-identical across thread counts and run-to-run. The AVX2 path's
// FMA contraction rounds differently from the baseline path (same
// k-ascending order), which is inside the blocked backend's documented
// 1e-5 envelope; set PRESTROID_GEMM_ISA=base to force the baseline tile
// when comparing against baseline-ISA runs bit-for-bit.

#define PRESTROID_GEMM_ISA_NS gemm_base
#include "tensor/kernels/gemm_blocked_impl.inc"
#undef PRESTROID_GEMM_ISA_NS

#include <cstdlib>
#include <string_view>

namespace prestroid {

#if defined(PRESTROID_GEMM_AVX2_TU)
// Compiled in gemm_blocked_avx2.cc with -mavx2 -mfma.
namespace gemm_avx2 {
size_t GemmBlockedRowTile();
size_t GemmPackedBSize(size_t k, size_t n);
void GemmPackB(size_t k, size_t n, const float* b, size_t rsb, size_t csb,
               float* packed);
void GemmBlockedRows(size_t i0, size_t i1, size_t k, size_t n, const float* a,
                     size_t rsa, size_t csa, const float* packed_b, float* c,
                     size_t ldc, const float* bias, GemmEpilogue epilogue,
                     bool accumulate);
}  // namespace gemm_avx2
#endif

namespace {

/// True when the AVX2+FMA instantiation exists, the CPU supports it, and it
/// is not disabled via PRESTROID_GEMM_ISA=base. Evaluated once per process.
bool UseAvx2Path() {
#if defined(PRESTROID_GEMM_AVX2_TU) && defined(__GNUC__) && \
    defined(__x86_64__)
  static const bool use = [] {
    const char* env = std::getenv("PRESTROID_GEMM_ISA");
    if (env != nullptr && std::string_view(env) == "base") return false;
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }();
  return use;
#else
  return false;
#endif
}

}  // namespace

size_t GemmBlockedRowTile() {
#if defined(PRESTROID_GEMM_AVX2_TU)
  if (UseAvx2Path()) return gemm_avx2::GemmBlockedRowTile();
#endif
  return gemm_base::GemmBlockedRowTile();
}

const char* GemmBlockedIsaName() { return UseAvx2Path() ? "avx2" : "base"; }

size_t GemmPackedBSize(size_t k, size_t n) {
#if defined(PRESTROID_GEMM_AVX2_TU)
  if (UseAvx2Path()) return gemm_avx2::GemmPackedBSize(k, n);
#endif
  return gemm_base::GemmPackedBSize(k, n);
}

void GemmPackB(size_t k, size_t n, const float* b, size_t rsb, size_t csb,
               float* packed) {
#if defined(PRESTROID_GEMM_AVX2_TU)
  if (UseAvx2Path()) {
    gemm_avx2::GemmPackB(k, n, b, rsb, csb, packed);
    return;
  }
#endif
  gemm_base::GemmPackB(k, n, b, rsb, csb, packed);
}

void GemmBlockedRows(size_t i0, size_t i1, size_t k, size_t n, const float* a,
                     size_t rsa, size_t csa, const float* packed_b, float* c,
                     size_t ldc, const float* bias, GemmEpilogue epilogue,
                     bool accumulate) {
#if defined(PRESTROID_GEMM_AVX2_TU)
  if (UseAvx2Path()) {
    gemm_avx2::GemmBlockedRows(i0, i1, k, n, a, rsa, csa, packed_b, c, ldc,
                               bias, epilogue, accumulate);
    return;
  }
#endif
  gemm_base::GemmBlockedRows(i0, i1, k, n, a, rsa, csa, packed_b, c, ldc,
                             bias, epilogue, accumulate);
}

}  // namespace prestroid
