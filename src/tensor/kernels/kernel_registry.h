#ifndef PRESTROID_TENSOR_KERNELS_KERNEL_REGISTRY_H_
#define PRESTROID_TENSOR_KERNELS_KERNEL_REGISTRY_H_

#include <array>
#include <cstddef>
#include <optional>
#include <string>

namespace prestroid {

/// Implementation family for the hot numeric kernels.
///
/// kScalar is the historical reference substrate: branchy, one float at a
/// time, bit-for-bit reproducible against every pre-kernel-layer release.
/// kBlocked is the register-tiled, cache-blocked, auto-vectorized layer in
/// tensor/kernels/ (packed panels, fused epilogues); it changes float
/// accumulation order, so results agree with kScalar to ~1e-5 relative, not
/// bit-for-bit (see DESIGN.md §5.2/§5.3).
enum class KernelBackend { kScalar, kBlocked };

/// Dispatchable op families. Per-op granularity keeps A/B experiments cheap:
/// e.g. blocked GEMM with the historical tree-conv loops, or vice versa.
enum class KernelOp {
  kGemm,            // MatMul / MatMulBias / MatMulBiasRelu
  kGemmTransposeA,  // A^T @ B (weight-gradient reductions)
  kGemmTransposeB,  // A @ B^T (input-gradient products)
  kTreeConv,        // tree-convolution forward/backward lowering
};

/// Number of entries in KernelOp.
inline constexpr size_t kNumKernelOps = 4;

/// Per-op backend choice carried by an ExecutionContext. Defaults to
/// DefaultBackend() (env PRESTROID_KERNEL, else blocked) for every op; the
/// scalar path therefore stays one flag away everywhere.
class KernelRegistry {
 public:
  KernelRegistry();

  KernelBackend backend(KernelOp op) const {
    return backends_[static_cast<size_t>(op)];
  }
  void SetBackend(KernelOp op, KernelBackend backend) {
    backends_[static_cast<size_t>(op)] = backend;
  }
  void SetAllBackends(KernelBackend backend) { backends_.fill(backend); }

  /// Process-wide default: PRESTROID_KERNEL=scalar|blocked if set (resolved
  /// once, at first use), otherwise kBlocked.
  static KernelBackend DefaultBackend();

  /// "scalar" / "blocked" <-> KernelBackend.
  static const char* BackendName(KernelBackend backend);
  static std::optional<KernelBackend> ParseBackend(const std::string& name);

 private:
  std::array<KernelBackend, kNumKernelOps> backends_;
};

}  // namespace prestroid

#endif  // PRESTROID_TENSOR_KERNELS_KERNEL_REGISTRY_H_
