#ifndef PRESTROID_TENSOR_KERNELS_KERNEL_REGISTRY_H_
#define PRESTROID_TENSOR_KERNELS_KERNEL_REGISTRY_H_

#include <array>
#include <cstddef>
#include <optional>
#include <string>

#include "util/status.h"

namespace prestroid {

/// Implementation family for the hot numeric kernels.
///
/// kScalar is the historical reference substrate: branchy, one float at a
/// time, bit-for-bit reproducible against every pre-kernel-layer release.
/// kBlocked is the register-tiled, cache-blocked, auto-vectorized layer in
/// tensor/kernels/ (packed panels, fused epilogues); it changes float
/// accumulation order, so results agree with kScalar to ~1e-5 relative, not
/// bit-for-bit (see DESIGN.md §5.2/§5.3).
enum class KernelBackend { kScalar, kBlocked };

/// Dispatchable op families. Per-op granularity keeps A/B experiments cheap:
/// e.g. blocked GEMM with the historical tree-conv loops, or vice versa.
enum class KernelOp {
  kGemm,            // MatMul / MatMulBias / MatMulBiasRelu
  kGemmTransposeA,  // A^T @ B (weight-gradient reductions)
  kGemmTransposeB,  // A @ B^T (input-gradient products)
  kTreeConv,        // tree-convolution forward/backward lowering
};

/// Number of entries in KernelOp.
inline constexpr size_t kNumKernelOps = 4;

/// Numeric precision of the eval-mode inference path (the resident-weight
/// kernel tier of tensor/kernels/resident_weights.h). Training always runs
/// fp32; the low-precision modes only change how frozen weights are stored
/// and how the serving-time forward GEMMs accumulate:
///
///  - kFp32: the historical path. Bit-for-bit identical to every prior
///    release under the selected KernelBackend.
///  - kBf16: weights stored as bfloat16 (the high 16 bits of the fp32
///    pattern, round-to-nearest-even), expanded on the fly and accumulated
///    in fp32. Halves weight bandwidth; agrees with fp32 to ~1e-2 relative
///    per GEMM (DESIGN.md §5.8).
///  - kInt8: weights quantized symmetrically per output channel, activations
///    per-tensor (calibrated or dynamic per-batch absmax), int32 accumulate
///    with a fused dequant+bias(+ReLU) epilogue. ~4x weight-memory
///    reduction; end-to-end predictions agree to the relaxed inference
///    tolerance documented in DESIGN.md §5.8.
enum class Precision { kFp32, kBf16, kInt8 };

/// Per-op backend choice carried by an ExecutionContext. Defaults to
/// DefaultBackend() (env PRESTROID_KERNEL, else blocked) for every op; the
/// scalar path therefore stays one flag away everywhere.
class KernelRegistry {
 public:
  KernelRegistry();

  KernelBackend backend(KernelOp op) const {
    return backends_[static_cast<size_t>(op)];
  }
  void SetBackend(KernelOp op, KernelBackend backend) {
    backends_[static_cast<size_t>(op)] = backend;
  }
  void SetAllBackends(KernelBackend backend) { backends_.fill(backend); }

  /// Process-wide default: PRESTROID_KERNEL=scalar|blocked if set (resolved
  /// once, at first use), otherwise kBlocked. An unparseable value resolves
  /// to kBlocked here so mid-run lookups stay total; entry points must call
  /// ValidateEnv() first so a typo fails fast instead of silently changing
  /// the backend (the pre-PR-8 behavior).
  static KernelBackend DefaultBackend();

  /// Startup validation of the PRESTROID_KERNEL override: OK when the
  /// variable is unset or names a known backend, kInvalidArgument (with the
  /// accepted set spelled out) otherwise. Reads the environment on every
  /// call — unlike DefaultBackend() it is not memoized, so tests can
  /// exercise it directly.
  static Status ValidateEnv();

  /// "scalar" / "blocked" <-> KernelBackend.
  static const char* BackendName(KernelBackend backend);
  static std::optional<KernelBackend> ParseBackend(const std::string& name);

  /// "fp32" / "bf16" / "int8" <-> Precision.
  static const char* PrecisionName(Precision precision);
  static std::optional<Precision> ParsePrecision(const std::string& name);

 private:
  std::array<KernelBackend, kNumKernelOps> backends_;
};

}  // namespace prestroid

#endif  // PRESTROID_TENSOR_KERNELS_KERNEL_REGISTRY_H_
