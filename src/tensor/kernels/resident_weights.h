#ifndef PRESTROID_TENSOR_KERNELS_RESIDENT_WEIGHTS_H_
#define PRESTROID_TENSOR_KERNELS_RESIDENT_WEIGHTS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/execution_context.h"
#include "tensor/kernels/gemm_kernels.h"
#include "tensor/kernels/kernel_registry.h"
#include "tensor/tensor.h"

namespace prestroid {

/// A layer's GEMM weight operand frozen into a serving-resident layout.
///
/// The training path re-packs B panels on every MatMul*Into call — correct
/// for training-sized batches where packing amortizes over many rows, but
/// the serving hot path is m <= 32, where per-call packing dominates the
/// GEMM itself. Building a ResidentWeights once per layer moves that work to
/// model-attach time, so serving never repacks per request:
///
///  - kFp32: the exact GemmPackB panel image the blocked backend would build
///    per call, reused forever. Gemm() output is bit-identical to the
///    blocked MatMul*Into path (same kernel, same pack, same ISA).
///  - kBf16: weights stored row-major as bfloat16 (half the bandwidth),
///    expanded on the fly, fp32 accumulate.
///  - kInt8: weights quantized symmetrically per output channel
///    (w_scale[j] = maxabs(W[:, j]) / 127, an all-zero channel gets scale 0
///    and dequantizes to exactly bias[j]); activations quantized per tensor,
///    either with the calibrated scale from a QuantizationProfile
///    (set_activation_scale) or a dynamic per-batch absmax when none is set.
///    int32 accumulate with a fused dequant+bias(+ReLU) epilogue.
///
/// Instances are immutable after Build() apart from the activation scale, so
/// one ResidentWeights may be shared by concurrent readers as long as the
/// scale is not mutated concurrently (serving freezes it at attach time).
class ResidentWeights {
 public:
  /// Builds from row-major fp32 weights [k, n]. The source tensor is not
  /// retained.
  static ResidentWeights Build(const Tensor& weights, Precision precision);

  Precision precision() const { return precision_; }
  size_t rows() const { return rows_; }  // k
  size_t cols() const { return cols_; }  // n

  /// Bytes held by the resident representation (panels / int8 + per-channel
  /// scales / bf16) — the per-request weight stream MemoryTracker charges.
  size_t resident_bytes() const;
  /// Bytes the fp32 weights stream per GEMM call on the legacy path.
  size_t fp32_bytes() const { return rows_ * cols_ * sizeof(float); }

  /// Calibrated per-tensor activation scale for the int8 path; <= 0 reverts
  /// to dynamic per-batch absmax. Ignored by fp32/bf16.
  void set_activation_scale(float scale) { act_scale_ = scale; }
  float activation_scale() const { return act_scale_; }

  /// out = a @ W (+ bias)(+ ReLU); a is [m, k] row-major, out [m, n].
  /// Deterministic at any thread count (k-ascending accumulation, disjoint
  /// row ranges). Does its own op/flop accounting like MatMul*Into. `ctx`
  /// must be non-null (layers always carry at least the serial context).
  void Gemm(Tensor* out, const Tensor& a, const Tensor* bias,
            GemmEpilogue epilogue, ExecutionContext* ctx) const;

 private:
  ResidentWeights() = default;

  Precision precision_ = Precision::kFp32;
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> packed_fp32_;      // kFp32: GemmPackB panel image
  std::vector<uint16_t> bf16_;          // kBf16: [k, n] row-major
  std::vector<int8_t> int8_;            // kInt8: pair-interleaved [k/2][2n]
  std::vector<float> channel_scale_;    // kInt8: [n] per-output-channel
  float act_scale_ = 0.0f;              // kInt8: <= 0 -> dynamic
};

}  // namespace prestroid

#endif  // PRESTROID_TENSOR_KERNELS_RESIDENT_WEIGHTS_H_
