#include "tensor/kernels/resident_weights.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels/gemm_quant.h"
#include "util/logging.h"

namespace prestroid {

namespace {

/// Matches the ops-layer ParallelFor grain (tensor/ops.cc): roughly 2^15
/// flops per chunk so tiny serving batches stay inline on the caller.
constexpr size_t kGrainFlops = 1u << 15;

size_t RowGrain(size_t row_cost_flops) {
  return std::max<size_t>(1, kGrainFlops / std::max<size_t>(1, row_cost_flops));
}

}  // namespace

ResidentWeights ResidentWeights::Build(const Tensor& weights,
                                       Precision precision) {
  PRESTROID_CHECK_EQ(weights.rank(), 2u);
  ResidentWeights rw;
  rw.precision_ = precision;
  rw.rows_ = weights.dim(0);
  rw.cols_ = weights.dim(1);
  const size_t k = rw.rows_, n = rw.cols_;
  const float* w = weights.data();
  switch (precision) {
    case Precision::kFp32: {
      rw.packed_fp32_.resize(GemmPackedBSize(k, n));
      GemmPackB(k, n, w, /*rsb=*/n, /*csb=*/1, rw.packed_fp32_.data());
      break;
    }
    case Precision::kBf16: {
      rw.bf16_.resize(k * n);
      for (size_t i = 0; i < k * n; ++i) rw.bf16_[i] = FloatToBf16(w[i]);
      break;
    }
    case Precision::kInt8: {
      rw.channel_scale_.assign(n, 0.0f);
      for (size_t kk = 0; kk < k; ++kk) {
        const float* row = w + kk * n;
        for (size_t j = 0; j < n; ++j) {
          const float v = std::fabs(row[j]);
          if (v > rw.channel_scale_[j]) rw.channel_scale_[j] = v;
        }
      }
      for (size_t j = 0; j < n; ++j) rw.channel_scale_[j] /= 127.0f;
      rw.int8_.resize(Int8PairPackedSize(k, n));
      PackInt8PairsB(k, n, w, rw.channel_scale_.data(), rw.int8_.data());
      break;
    }
  }
  return rw;
}

size_t ResidentWeights::resident_bytes() const {
  switch (precision_) {
    case Precision::kFp32:
      return packed_fp32_.size() * sizeof(float);
    case Precision::kBf16:
      return bf16_.size() * sizeof(uint16_t);
    case Precision::kInt8:
      return int8_.size() * sizeof(int8_t) +
             channel_scale_.size() * sizeof(float);
  }
  return 0;
}

void ResidentWeights::Gemm(Tensor* out, const Tensor& a, const Tensor* bias,
                           GemmEpilogue epilogue, ExecutionContext* ctx) const {
  PRESTROID_CHECK(ctx != nullptr);
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_EQ(a.dim(1), rows_);
  const size_t m = a.dim(0), k = rows_, n = cols_;
  if (bias != nullptr) PRESTROID_CHECK_EQ(bias->size(), n);
  out->ResetShape({m, n});
  const float* ap = a.data();
  const float* biasp = bias != nullptr ? bias->data() : nullptr;
  float* op = out->data();
  ctx->AddOp();
  // Flop accounting mirrors MatMulEpilogueInto so ExecStats comparisons
  // between the legacy and resident paths line up.
  uint64_t flops = 2ull * m * k * n;
  if (epilogue == GemmEpilogue::kBias) flops += 1ull * m * n;
  if (epilogue == GemmEpilogue::kBiasRelu) flops += 2ull * m * n;
  ctx->AddFlops(flops);
  const size_t grain = RowGrain(2 * k * n);

  switch (precision_) {
    case Precision::kFp32: {
      const float* pb = packed_fp32_.data();
      ctx->ParallelFor(0, m, grain, [&](size_t i0, size_t i1) {
        GemmBlockedRows(i0, i1, k, n, ap, /*rsa=*/k, /*csa=*/1, pb, op, n,
                        biasp, epilogue, /*accumulate=*/false);
      });
      return;
    }
    case Precision::kBf16: {
      const uint16_t* bp = bf16_.data();
      ctx->ParallelFor(0, m, grain, [&](size_t i0, size_t i1) {
        GemmBf16Rows(i0, i1, k, n, ap, bp, biasp, epilogue, op, n);
      });
      return;
    }
    case Precision::kInt8: {
      // Per-tensor activation scale: the calibrated clip, or this batch's
      // absmax when no profile is set. Quantization runs on the calling
      // thread (m * k is small at serving shapes); the per-channel dequant
      // scale folds a_scale in once so the epilogue is a single multiply.
      float a_scale = act_scale_;
      if (a_scale <= 0.0f) a_scale = AbsMax(ap, m * k) / 127.0f;
      // Activation rows are padded to the pair-layout's even reduction
      // length; the pad column multiplies the all-zero pad row of B.
      const size_t k_pad = (k + 1) & ~static_cast<size_t>(1);
      thread_local std::vector<int8_t> qa;
      thread_local std::vector<float> dq;
      if (qa.size() < m * k_pad) qa.resize(m * k_pad);
      if (dq.size() < n) dq.resize(n);
      const float inv = a_scale > 0.0f ? 1.0f / a_scale : 0.0f;
      if (k_pad == k) {
        QuantizeSymmetric(ap, m * k, inv, qa.data());
      } else {
        for (size_t i = 0; i < m; ++i) {
          QuantizeSymmetric(ap + i * k, k, inv, qa.data() + i * k_pad);
          qa[i * k_pad + k] = 0;
        }
      }
      for (size_t j = 0; j < n; ++j) dq[j] = a_scale * channel_scale_[j];
      const int8_t* qap = qa.data();
      const int8_t* bp = int8_.data();
      const float* dqp = dq.data();
      ctx->ParallelFor(0, m, grain, [&](size_t i0, size_t i1) {
        GemmInt8Rows(i0, i1, k_pad, n, qap, bp, dqp, biasp, epilogue, op, n);
      });
      return;
    }
  }
}

}  // namespace prestroid
