#include <algorithm>

#include "tensor/kernels/gemm_kernels.h"

namespace prestroid {

namespace {

/// Reduction-dim tile, unchanged from the historical ops.cc value: 256 rows
/// of b at n<=1024 floats stay within L2 while every row of the chunk
/// streams over them.
constexpr size_t kMatMulKBlock = 256;

}  // namespace

void GemmScalarRows(size_t i0, size_t i1, size_t k, size_t n, const float* a,
                    const float* b, float* c, const float* bias,
                    GemmEpilogue epilogue) {
  std::fill(c + i0 * n, c + i1 * n, 0.0f);
  // Tiling the reduction dim keeps the touched rows of b hot across every
  // row of the chunk; per output element the k-accumulation order is still
  // strictly ascending, so tiling does not change a single bit.
  for (size_t kk0 = 0; kk0 < k; kk0 += kMatMulKBlock) {
    const size_t kk1 = std::min(k, kk0 + kMatMulKBlock);
    for (size_t i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * n;
      for (size_t kk = kk0; kk < kk1; ++kk) {
        const float aik = arow[kk];
        if (aik == 0.0f) continue;
        const float* brow = b + kk * n;
        for (size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  }
  if (epilogue == GemmEpilogue::kNone) return;
  // Bias lands after the full reduction, per element, exactly like the
  // separate AddRowBroadcastInPlace pass it fuses away.
  for (size_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    if (epilogue == GemmEpilogue::kBias) {
      for (size_t j = 0; j < n; ++j) crow[j] += bias[j];
    } else {
      for (size_t j = 0; j < n; ++j) {
        crow[j] = std::max(0.0f, crow[j] + bias[j]);
      }
    }
  }
}

void GemmTransposeAScalarCols(size_t i0, size_t i1, size_t k, size_t m,
                              size_t n, const float* a, const float* b,
                              float* c) {
  // kk-outer: streams a row of A and a row of B per reduction step, matching
  // the historical serial loop exactly.
  for (size_t kk = 0; kk < k; ++kk) {
    const float* arow = a + kk * m;
    const float* brow = b + kk * n;
    for (size_t i = i0; i < i1; ++i) {
      const float aik = arow[i];
      if (aik == 0.0f) continue;
      float* crow = c + i * n;
      for (size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void GemmTransposeBScalarRows(size_t i0, size_t i1, size_t k, size_t n,
                              const float* a, const float* b, float* c) {
  for (size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      c[i * n + j] = acc;
    }
  }
}

}  // namespace prestroid
