#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels/gemm_kernels.h"
#include "util/logging.h"

namespace prestroid {

namespace {

/// Rows-per-chunk floor so ParallelFor never splits work finer than roughly
/// this many flops per chunk — tiny shapes stay inline on the caller.
constexpr size_t kGrainFlops = 1u << 15;

size_t RowGrain(size_t row_cost_flops) {
  return std::max<size_t>(1, kGrainFlops / std::max<size_t>(1, row_cost_flops));
}

constexpr size_t kTransposeBlock = 64;

/// True when `ctx` routes this op family to the blocked kernel backend.
/// Ops invoked without a context always take the scalar reference path.
bool UseBlocked(const ExecutionContext* ctx, KernelOp op) {
  return ctx != nullptr &&
         ctx->kernels().backend(op) == KernelBackend::kBlocked;
}

/// Shared body of MatMul / MatMulBias / MatMulBiasRelu: out = a @ b with the
/// requested fused epilogue, routed to the backend `ctx` selects for kGemm.
void MatMulEpilogueInto(Tensor* out, const Tensor& a, const Tensor& b,
                        const Tensor* bias, GemmEpilogue epilogue,
                        ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_EQ(b.rank(), 2u);
  PRESTROID_CHECK_EQ(a.dim(1), b.dim(0));
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  if (bias != nullptr) PRESTROID_CHECK_EQ(bias->size(), n);
  out->ResetShape({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  const float* biasp = bias != nullptr ? bias->data() : nullptr;
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    uint64_t flops = 2ull * m * k * n;
    // The epilogue flops match the separate broadcast/relu passes they fuse.
    if (epilogue == GemmEpilogue::kBias) flops += 1ull * m * n;
    if (epilogue == GemmEpilogue::kBiasRelu) flops += 2ull * m * n;
    ctx->AddFlops(flops);
  }
  const size_t grain = RowGrain(2 * k * n);
  if (UseBlocked(ctx, KernelOp::kGemm)) {
    Tensor packed = ctx->AcquireScratch({GemmPackedBSize(k, n)});
    GemmPackB(k, n, bp, /*rsb=*/n, /*csb=*/1, packed.data());
    const float* pb = packed.data();
    ctx->ParallelFor(0, m, grain, [&](size_t i0, size_t i1) {
      GemmBlockedRows(i0, i1, k, n, ap, /*rsa=*/k, /*csa=*/1, pb, op, n, biasp,
                      epilogue, /*accumulate=*/false);
    });
    ctx->ReleaseScratch(std::move(packed));
    return;
  }
  auto kernel = [&](size_t i0, size_t i1) {
    GemmScalarRows(i0, i1, k, n, ap, bp, op, biasp, epilogue);
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, m, grain, kernel);
  } else {
    kernel(0, m);
  }
}

}  // namespace

// --- Destination-passing kernels -------------------------------------------

void MatMulInto(Tensor* out, const Tensor& a, const Tensor& b,
                ExecutionContext* ctx) {
  MatMulEpilogueInto(out, a, b, nullptr, GemmEpilogue::kNone, ctx);
}

void MatMulBiasInto(Tensor* out, const Tensor& a, const Tensor& b,
                    const Tensor& bias, ExecutionContext* ctx) {
  MatMulEpilogueInto(out, a, b, &bias, GemmEpilogue::kBias, ctx);
}

void MatMulBiasReluInto(Tensor* out, const Tensor& a, const Tensor& b,
                        const Tensor& bias, ExecutionContext* ctx) {
  MatMulEpilogueInto(out, a, b, &bias, GemmEpilogue::kBiasRelu, ctx);
}

void MatMulTransposeAAccumulate(Tensor* out, const Tensor& a, const Tensor& b,
                                ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_EQ(b.rank(), 2u);
  PRESTROID_CHECK_EQ(a.dim(0), b.dim(0));
  const size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  PRESTROID_CHECK_EQ(out->rank(), 2u);
  PRESTROID_CHECK_EQ(out->dim(0), m);
  PRESTROID_CHECK_EQ(out->dim(1), n);
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(2ull * k * m * n);
  }
  const size_t grain = RowGrain(2 * k * n);
  if (UseBlocked(ctx, KernelOp::kGemmTransposeA)) {
    // a is [k, m]; logical operand row i is column i of a, i.e. strides
    // (rsa=1, csa=m). The k-complete register block is added onto out in one
    // pass, so parallel chunks stay deterministic at any thread count.
    Tensor packed = ctx->AcquireScratch({GemmPackedBSize(k, n)});
    GemmPackB(k, n, bp, /*rsb=*/n, /*csb=*/1, packed.data());
    const float* pb = packed.data();
    ctx->ParallelFor(0, m, grain, [&](size_t i0, size_t i1) {
      GemmBlockedRows(i0, i1, k, n, ap, /*rsa=*/1, /*csa=*/m, pb, op, n,
                      nullptr, GemmEpilogue::kNone, /*accumulate=*/true);
    });
    ctx->ReleaseScratch(std::move(packed));
    return;
  }
  // Parallel over the rows of `out` (columns of `a`); within each chunk the
  // reduction runs kk-outer, matching the historical serial loop exactly.
  auto kernel = [&](size_t i0, size_t i1) {
    GemmTransposeAScalarCols(i0, i1, k, m, n, ap, bp, op);
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, m, grain, kernel);
  } else {
    kernel(0, m);
  }
}

void MatMulTransposeAInto(Tensor* out, const Tensor& a, const Tensor& b,
                          ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  const size_t m = a.dim(1);
  const size_t n = b.dim(1);
  out->ResetShape({m, n});
  out->Fill(0.0f);
  MatMulTransposeAAccumulate(out, a, b, ctx);
}

void MatMulTransposeBInto(Tensor* out, const Tensor& a, const Tensor& b,
                          ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_EQ(b.rank(), 2u);
  PRESTROID_CHECK_EQ(a.dim(1), b.dim(1));
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  out->ResetShape({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(2ull * m * k * n);
  }
  const size_t grain = RowGrain(2 * k * n);
  if (UseBlocked(ctx, KernelOp::kGemmTransposeB)) {
    // b is [n, k]; the packed image of the logical [k, n] right operand
    // reads element (kk, j) from b[j * k + kk], i.e. strides (rsb=1, csb=k).
    Tensor packed = ctx->AcquireScratch({GemmPackedBSize(k, n)});
    GemmPackB(k, n, bp, /*rsb=*/1, /*csb=*/k, packed.data());
    const float* pb = packed.data();
    ctx->ParallelFor(0, m, grain, [&](size_t i0, size_t i1) {
      GemmBlockedRows(i0, i1, k, n, ap, /*rsa=*/k, /*csa=*/1, pb, op, n,
                      nullptr, GemmEpilogue::kNone, /*accumulate=*/false);
    });
    ctx->ReleaseScratch(std::move(packed));
    return;
  }
  auto kernel = [&](size_t i0, size_t i1) {
    GemmTransposeBScalarRows(i0, i1, k, n, ap, bp, op);
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, m, grain, kernel);
  } else {
    kernel(0, m);
  }
}

void TransposeInto(Tensor* out, const Tensor& a, ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  const size_t m = a.dim(0), n = a.dim(1);
  out->ResetShape({n, m});
  const float* ap = a.data();
  float* op = out->data();
  if (ctx != nullptr) ctx->AddOp();
  auto kernel = [&](size_t i0, size_t i1) {
    for (size_t j0 = 0; j0 < n; j0 += kTransposeBlock) {
      const size_t j1 = std::min(n, j0 + kTransposeBlock);
      for (size_t i = i0; i < i1; ++i) {
        for (size_t j = j0; j < j1; ++j) op[j * m + i] = ap[i * n + j];
      }
    }
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, m, RowGrain(n), kernel);
  } else {
    kernel(0, m);
  }
}

void AddInto(Tensor* out, const Tensor& a, const Tensor& b,
             ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.size(), b.size());
  out->ResetShape(a.shape());
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(a.size());
  }
  auto kernel = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) op[i] = ap[i] + bp[i];
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, a.size(), kGrainFlops, kernel);
  } else {
    kernel(0, a.size());
  }
}

void MulInto(Tensor* out, const Tensor& a, const Tensor& b,
             ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.size(), b.size());
  out->ResetShape(a.shape());
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(a.size());
  }
  auto kernel = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) op[i] = ap[i] * bp[i];
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, a.size(), kGrainFlops, kernel);
  } else {
    kernel(0, a.size());
  }
}

void AddRowBroadcastInPlace(Tensor* a, const Tensor& bias,
                            ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a->rank(), 2u);
  PRESTROID_CHECK_EQ(bias.size(), a->dim(1));
  const size_t m = a->dim(0), n = a->dim(1);
  float* ap = a->data();
  const float* bp = bias.data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(static_cast<uint64_t>(m) * n);
  }
  auto kernel = [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      float* row = ap + i * n;
      for (size_t j = 0; j < n; ++j) row[j] += bp[j];
    }
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, m, RowGrain(n), kernel);
  } else {
    kernel(0, m);
  }
}

void SumRowsAccumulate(Tensor* out, const Tensor& a, ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  const size_t m = a.dim(0), n = a.dim(1);
  PRESTROID_CHECK_EQ(out->size(), n);
  const float* ap = a.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(static_cast<uint64_t>(m) * n);
  }
  // Each chunk owns a disjoint column range; every column still accumulates
  // its rows in ascending order, so this matches the serial result exactly.
  auto kernel = [&](size_t j0, size_t j1) {
    for (size_t i = 0; i < m; ++i) {
      const float* row = ap + i * n;
      for (size_t j = j0; j < j1; ++j) op[j] += row[j];
    }
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, n, RowGrain(m), kernel);
  } else {
    kernel(0, n);
  }
}

void ReluInto(Tensor* out, const Tensor& a, ExecutionContext* ctx) {
  if (out != &a) out->ResetShape(a.shape());
  const float* ap = a.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(a.size());
  }
  auto kernel = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) op[i] = std::max(0.0f, ap[i]);
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, a.size(), kGrainFlops, kernel);
  } else {
    kernel(0, a.size());
  }
}

void SigmoidInto(Tensor* out, const Tensor& a, ExecutionContext* ctx) {
  if (out != &a) out->ResetShape(a.shape());
  const float* ap = a.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(4ull * a.size());
  }
  auto kernel = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      op[i] = 1.0f / (1.0f + std::exp(-ap[i]));
    }
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, a.size(), kGrainFlops / 4, kernel);
  } else {
    kernel(0, a.size());
  }
}

void TanhInto(Tensor* out, const Tensor& a, ExecutionContext* ctx) {
  if (out != &a) out->ResetShape(a.shape());
  const float* ap = a.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(4ull * a.size());
  }
  auto kernel = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) op[i] = std::tanh(ap[i]);
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, a.size(), kGrainFlops / 4, kernel);
  } else {
    kernel(0, a.size());
  }
}

// --- Return-by-value wrappers ----------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulInto(&out, a, b, nullptr);
  return out;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulTransposeAInto(&out, a, b, nullptr);
  return out;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulTransposeBInto(&out, a, b, nullptr);
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out;
  TransposeInto(&out, a, nullptr);
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  PRESTROID_CHECK_EQ(a.size(), b.size());
  Tensor out = a;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  Tensor out = a;
  AddRowBroadcastInPlace(&out, bias, nullptr);
  return out;
}

Tensor SumRows(const Tensor& a) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  Tensor out({a.dim(1)});
  SumRowsAccumulate(&out, a, nullptr);
  return out;
}

Tensor MeanRows(const Tensor& a) {
  Tensor out = SumRows(a);
  PRESTROID_CHECK_GT(a.dim(0), 0u);
  out *= 1.0f / static_cast<float>(a.dim(0));
  return out;
}

Tensor MaxRows(const Tensor& a) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_GT(a.dim(0), 0u);
  const size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  for (size_t j = 0; j < n; ++j) out[j] = a.At(0, j);
  for (size_t i = 1; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out[j] = std::max(out[j], a.At(i, j));
  }
  return out;
}

Tensor MinRows(const Tensor& a) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_GT(a.dim(0), 0u);
  const size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  for (size_t j = 0; j < n; ++j) out[j] = a.At(0, j);
  for (size_t i = 1; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out[j] = std::min(out[j], a.At(i, j));
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  Tensor out;
  ReluInto(&out, a, nullptr);
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out;
  SigmoidInto(&out, a, nullptr);
  return out;
}

Tensor TanhT(const Tensor& a) {
  Tensor out;
  TanhInto(&out, a, nullptr);
  return out;
}

}  // namespace prestroid
