#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace prestroid {

namespace {

/// Rows-per-chunk floor so ParallelFor never splits work finer than roughly
/// this many flops per chunk — tiny shapes stay inline on the caller.
constexpr size_t kGrainFlops = 1u << 15;

size_t RowGrain(size_t row_cost_flops) {
  return std::max<size_t>(1, kGrainFlops / std::max<size_t>(1, row_cost_flops));
}

/// Reduction-dim tile for the blocked matmul: 256 rows of b at n<=1024
/// floats stay within L2 while every row of the chunk streams over them.
constexpr size_t kMatMulKBlock = 256;

constexpr size_t kTransposeBlock = 64;

}  // namespace

// --- Destination-passing kernels -------------------------------------------

void MatMulInto(Tensor* out, const Tensor& a, const Tensor& b,
                ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_EQ(b.rank(), 2u);
  PRESTROID_CHECK_EQ(a.dim(1), b.dim(0));
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  out->ResetShape({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(2ull * m * k * n);
  }
  auto kernel = [&](size_t i0, size_t i1) {
    std::fill(op + i0 * n, op + i1 * n, 0.0f);
    // Tiling the reduction dim keeps the touched rows of b hot across every
    // row of the chunk; per output element the k-accumulation order is still
    // strictly ascending, so tiling does not change a single bit.
    for (size_t kk0 = 0; kk0 < k; kk0 += kMatMulKBlock) {
      const size_t kk1 = std::min(k, kk0 + kMatMulKBlock);
      for (size_t i = i0; i < i1; ++i) {
        const float* arow = ap + i * k;
        float* orow = op + i * n;
        for (size_t kk = kk0; kk < kk1; ++kk) {
          const float aik = arow[kk];
          if (aik == 0.0f) continue;
          const float* brow = bp + kk * n;
          for (size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
        }
      }
    }
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, m, RowGrain(2 * k * n), kernel);
  } else {
    kernel(0, m);
  }
}

void MatMulTransposeAAccumulate(Tensor* out, const Tensor& a, const Tensor& b,
                                ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_EQ(b.rank(), 2u);
  PRESTROID_CHECK_EQ(a.dim(0), b.dim(0));
  const size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  PRESTROID_CHECK_EQ(out->rank(), 2u);
  PRESTROID_CHECK_EQ(out->dim(0), m);
  PRESTROID_CHECK_EQ(out->dim(1), n);
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(2ull * k * m * n);
  }
  // Parallel over the rows of `out` (columns of `a`); within each chunk the
  // reduction runs kk-outer, matching the historical serial loop exactly.
  auto kernel = [&](size_t i0, size_t i1) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float* arow = ap + kk * m;
      const float* brow = bp + kk * n;
      for (size_t i = i0; i < i1; ++i) {
        const float aik = arow[i];
        if (aik == 0.0f) continue;
        float* orow = op + i * n;
        for (size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
      }
    }
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, m, RowGrain(2 * k * n), kernel);
  } else {
    kernel(0, m);
  }
}

void MatMulTransposeAInto(Tensor* out, const Tensor& a, const Tensor& b,
                          ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  const size_t m = a.dim(1);
  const size_t n = b.dim(1);
  out->ResetShape({m, n});
  out->Fill(0.0f);
  MatMulTransposeAAccumulate(out, a, b, ctx);
}

void MatMulTransposeBInto(Tensor* out, const Tensor& a, const Tensor& b,
                          ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_EQ(b.rank(), 2u);
  PRESTROID_CHECK_EQ(a.dim(1), b.dim(1));
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  out->ResetShape({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(2ull * m * k * n);
  }
  auto kernel = [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      const float* arow = ap + i * k;
      for (size_t j = 0; j < n; ++j) {
        const float* brow = bp + j * k;
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        op[i * n + j] = acc;
      }
    }
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, m, RowGrain(2 * k * n), kernel);
  } else {
    kernel(0, m);
  }
}

void TransposeInto(Tensor* out, const Tensor& a, ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  const size_t m = a.dim(0), n = a.dim(1);
  out->ResetShape({n, m});
  const float* ap = a.data();
  float* op = out->data();
  if (ctx != nullptr) ctx->AddOp();
  auto kernel = [&](size_t i0, size_t i1) {
    for (size_t j0 = 0; j0 < n; j0 += kTransposeBlock) {
      const size_t j1 = std::min(n, j0 + kTransposeBlock);
      for (size_t i = i0; i < i1; ++i) {
        for (size_t j = j0; j < j1; ++j) op[j * m + i] = ap[i * n + j];
      }
    }
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, m, RowGrain(n), kernel);
  } else {
    kernel(0, m);
  }
}

void AddInto(Tensor* out, const Tensor& a, const Tensor& b,
             ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.size(), b.size());
  out->ResetShape(a.shape());
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(a.size());
  }
  auto kernel = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) op[i] = ap[i] + bp[i];
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, a.size(), kGrainFlops, kernel);
  } else {
    kernel(0, a.size());
  }
}

void MulInto(Tensor* out, const Tensor& a, const Tensor& b,
             ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.size(), b.size());
  out->ResetShape(a.shape());
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(a.size());
  }
  auto kernel = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) op[i] = ap[i] * bp[i];
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, a.size(), kGrainFlops, kernel);
  } else {
    kernel(0, a.size());
  }
}

void AddRowBroadcastInPlace(Tensor* a, const Tensor& bias,
                            ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a->rank(), 2u);
  PRESTROID_CHECK_EQ(bias.size(), a->dim(1));
  const size_t m = a->dim(0), n = a->dim(1);
  float* ap = a->data();
  const float* bp = bias.data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(static_cast<uint64_t>(m) * n);
  }
  auto kernel = [&](size_t i0, size_t i1) {
    for (size_t i = i0; i < i1; ++i) {
      float* row = ap + i * n;
      for (size_t j = 0; j < n; ++j) row[j] += bp[j];
    }
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, m, RowGrain(n), kernel);
  } else {
    kernel(0, m);
  }
}

void SumRowsAccumulate(Tensor* out, const Tensor& a, ExecutionContext* ctx) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  const size_t m = a.dim(0), n = a.dim(1);
  PRESTROID_CHECK_EQ(out->size(), n);
  const float* ap = a.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(static_cast<uint64_t>(m) * n);
  }
  // Each chunk owns a disjoint column range; every column still accumulates
  // its rows in ascending order, so this matches the serial result exactly.
  auto kernel = [&](size_t j0, size_t j1) {
    for (size_t i = 0; i < m; ++i) {
      const float* row = ap + i * n;
      for (size_t j = j0; j < j1; ++j) op[j] += row[j];
    }
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, n, RowGrain(m), kernel);
  } else {
    kernel(0, n);
  }
}

void ReluInto(Tensor* out, const Tensor& a, ExecutionContext* ctx) {
  if (out != &a) out->ResetShape(a.shape());
  const float* ap = a.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(a.size());
  }
  auto kernel = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) op[i] = std::max(0.0f, ap[i]);
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, a.size(), kGrainFlops, kernel);
  } else {
    kernel(0, a.size());
  }
}

void SigmoidInto(Tensor* out, const Tensor& a, ExecutionContext* ctx) {
  if (out != &a) out->ResetShape(a.shape());
  const float* ap = a.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(4ull * a.size());
  }
  auto kernel = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      op[i] = 1.0f / (1.0f + std::exp(-ap[i]));
    }
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, a.size(), kGrainFlops / 4, kernel);
  } else {
    kernel(0, a.size());
  }
}

void TanhInto(Tensor* out, const Tensor& a, ExecutionContext* ctx) {
  if (out != &a) out->ResetShape(a.shape());
  const float* ap = a.data();
  float* op = out->data();
  if (ctx != nullptr) {
    ctx->AddOp();
    ctx->AddFlops(4ull * a.size());
  }
  auto kernel = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) op[i] = std::tanh(ap[i]);
  };
  if (ctx != nullptr) {
    ctx->ParallelFor(0, a.size(), kGrainFlops / 4, kernel);
  } else {
    kernel(0, a.size());
  }
}

// --- Return-by-value wrappers ----------------------------------------------

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulInto(&out, a, b, nullptr);
  return out;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulTransposeAInto(&out, a, b, nullptr);
  return out;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  Tensor out;
  MatMulTransposeBInto(&out, a, b, nullptr);
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out;
  TransposeInto(&out, a, nullptr);
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  PRESTROID_CHECK_EQ(a.size(), b.size());
  Tensor out = a;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  Tensor out = a;
  AddRowBroadcastInPlace(&out, bias, nullptr);
  return out;
}

Tensor SumRows(const Tensor& a) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  Tensor out({a.dim(1)});
  SumRowsAccumulate(&out, a, nullptr);
  return out;
}

Tensor MeanRows(const Tensor& a) {
  Tensor out = SumRows(a);
  PRESTROID_CHECK_GT(a.dim(0), 0u);
  out *= 1.0f / static_cast<float>(a.dim(0));
  return out;
}

Tensor MaxRows(const Tensor& a) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_GT(a.dim(0), 0u);
  const size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  for (size_t j = 0; j < n; ++j) out[j] = a.At(0, j);
  for (size_t i = 1; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out[j] = std::max(out[j], a.At(i, j));
  }
  return out;
}

Tensor MinRows(const Tensor& a) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_GT(a.dim(0), 0u);
  const size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  for (size_t j = 0; j < n; ++j) out[j] = a.At(0, j);
  for (size_t i = 1; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out[j] = std::min(out[j], a.At(i, j));
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  Tensor out;
  ReluInto(&out, a, nullptr);
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out;
  SigmoidInto(&out, a, nullptr);
  return out;
}

Tensor TanhT(const Tensor& a) {
  Tensor out;
  TanhInto(&out, a, nullptr);
  return out;
}

}  // namespace prestroid
