#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace prestroid {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_EQ(b.rank(), 2u);
  PRESTROID_CHECK_EQ(a.dim(1), b.dim(0));
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  for (size_t i = 0; i < m; ++i) {
    for (size_t kk = 0; kk < k; ++kk) {
      const float aik = ap[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = bp + kk * n;
      float* orow = op + i * n;
      for (size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_EQ(b.rank(), 2u);
  PRESTROID_CHECK_EQ(a.dim(0), b.dim(0));
  const size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  for (size_t kk = 0; kk < k; ++kk) {
    const float* arow = ap + kk * m;
    const float* brow = bp + kk * n;
    for (size_t i = 0; i < m; ++i) {
      const float aik = arow[i];
      if (aik == 0.0f) continue;
      float* orow = op + i * n;
      for (size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_EQ(b.rank(), 2u);
  PRESTROID_CHECK_EQ(a.dim(1), b.dim(1));
  const size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  const float* ap = a.data();
  const float* bp = b.data();
  float* op = out.data();
  for (size_t i = 0; i < m; ++i) {
    const float* arow = ap + i * k;
    for (size_t j = 0; j < n; ++j) {
      const float* brow = bp + j * k;
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      op[i * n + j] = acc;
    }
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  const size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out.At(j, i) = a.At(i, j);
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out += b;
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  out -= b;
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  PRESTROID_CHECK_EQ(a.size(), b.size());
  Tensor out = a;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b[i];
  return out;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_EQ(bias.size(), a.dim(1));
  Tensor out = a;
  const size_t m = a.dim(0), n = a.dim(1);
  for (size_t i = 0; i < m; ++i) {
    float* row = out.data() + i * n;
    for (size_t j = 0; j < n; ++j) row[j] += bias[j];
  }
  return out;
}

Tensor SumRows(const Tensor& a) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  const size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  for (size_t i = 0; i < m; ++i) {
    const float* row = a.data() + i * n;
    for (size_t j = 0; j < n; ++j) out[j] += row[j];
  }
  return out;
}

Tensor MeanRows(const Tensor& a) {
  Tensor out = SumRows(a);
  PRESTROID_CHECK_GT(a.dim(0), 0u);
  out *= 1.0f / static_cast<float>(a.dim(0));
  return out;
}

Tensor MaxRows(const Tensor& a) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_GT(a.dim(0), 0u);
  const size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  for (size_t j = 0; j < n; ++j) out[j] = a.At(0, j);
  for (size_t i = 1; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out[j] = std::max(out[j], a.At(i, j));
  }
  return out;
}

Tensor MinRows(const Tensor& a) {
  PRESTROID_CHECK_EQ(a.rank(), 2u);
  PRESTROID_CHECK_GT(a.dim(0), 0u);
  const size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  for (size_t j = 0; j < n; ++j) out[j] = a.At(0, j);
  for (size_t i = 1; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out[j] = std::min(out[j], a.At(i, j));
  }
  return out;
}

Tensor Relu(const Tensor& a) {
  Tensor out = a;
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::max(0.0f, out[i]);
  return out;
}

Tensor Sigmoid(const Tensor& a) {
  Tensor out = a;
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  }
  return out;
}

Tensor TanhT(const Tensor& a) {
  Tensor out = a;
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
  return out;
}

}  // namespace prestroid
