#include "sql/token.h"

#include <array>

namespace prestroid::sql {

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kKeyword:
      return "keyword";
    case TokenType::kNumber:
      return "number";
    case TokenType::kString:
      return "string";
    case TokenType::kOperator:
      return "operator";
    case TokenType::kComma:
      return ",";
    case TokenType::kDot:
      return ".";
    case TokenType::kLeftParen:
      return "(";
    case TokenType::kRightParen:
      return ")";
    case TokenType::kEnd:
      return "<end>";
  }
  return "?";
}

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kKeyword && text == kw;
}

bool Token::IsOperator(const char* op) const {
  return type == TokenType::kOperator && text == op;
}

bool IsReservedKeyword(const std::string& upper_word) {
  static constexpr std::array<const char*, 34> kKeywords = {
      "SELECT", "FROM",    "WHERE", "GROUP", "BY",   "HAVING", "ORDER",
      "LIMIT",  "JOIN",    "INNER", "LEFT",  "RIGHT", "FULL",  "CROSS",
      "OUTER",  "ON",      "AS",    "AND",   "OR",   "NOT",    "IN",
      "BETWEEN", "LIKE",   "IS",    "NULL",  "ASC",  "DESC",   "DISTINCT",
      "COUNT",  "SUM",     "AVG",   "MIN",   "MAX",  "UNION",
  };
  for (const char* kw : kKeywords) {
    if (upper_word == kw) return true;
  }
  return false;
}

}  // namespace prestroid::sql
