#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace prestroid::sql {

namespace {

/// Recursive-descent parser over the token stream. Grammar (informal):
///
///   select    := SELECT [DISTINCT] items FROM table_ref join* [WHERE pred]
///                [GROUP BY exprs] [HAVING pred] [ORDER BY order_items]
///                [LIMIT number]
///   pred      := or ; or := and (OR and)* ; and := unary (AND unary)*
///   unary     := NOT unary | primary
///   primary   := '(' pred ')' | comparison
///   comparison:= value (cmp_op value | IN list | BETWEEN v AND v |
///                LIKE string | IS [NOT] NULL)
///   value     := term (('+'|'-') term)* ; term := factor (('*'|'/'|'%') factor)*
///   factor    := column | literal | func '(' args ')' | '(' value ')'
class Parser {
 public:
  Parser(std::vector<Token> tokens, const ParseLimits& limits)
      : tokens_(std::move(tokens)), limits_(limits) {}

  Result<std::unique_ptr<SelectStmt>> ParseStatement() {
    auto stmt_result = ParseSelectBody();
    if (!stmt_result.ok()) return stmt_result.status();
    if (!Peek().IsKeyword("") && Peek().type != TokenType::kEnd) {
      return Error("trailing tokens after statement");
    }
    return stmt_result;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    size_t saved = pos_;
    auto pred = ParsePredicate();
    if (pred.ok() && Peek().type == TokenType::kEnd) return pred;
    // Fall back to a bare value expression (e.g. "AVG(x)" in a Project).
    pos_ = saved;
    auto value = ParseValueExpr();
    if (!value.ok()) return value.status();
    if (Peek().type != TokenType::kEnd) return Error("trailing tokens");
    return value;
  }

 private:
  /// Counts live recursion frames so hostile nesting ("((((...") surfaces
  /// as a Status instead of exhausting the thread stack. Scoped to the
  /// functions that can re-enter themselves: predicates, factors, and
  /// subqueries.
  struct DepthScope {
    explicit DepthScope(Parser* parser) : parser_(parser) { ++parser_->depth_; }
    ~DepthScope() { --parser_->depth_; }
    Parser* parser_;
  };
  Status CheckDepth() const {
    if (depth_ > limits_.max_depth) {
      return Status::ResourceExhausted(StrFormat(
          "expression nesting exceeds depth limit (%zu)", limits_.max_depth));
    }
    return Status::OK();
  }

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokenType type) {
    if (Peek().type == type) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status Error(const std::string& what) const {
    return Status::ParseError(StrFormat("%s near offset %zu (token '%s')",
                                        what.c_str(), Peek().offset,
                                        Peek().text.c_str()));
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelectBody() {
    DepthScope scope(this);
    PRESTROID_RETURN_NOT_OK(CheckDepth());
    if (!MatchKeyword("SELECT")) return Error("expected SELECT");
    auto stmt = std::make_unique<SelectStmt>();
    stmt->distinct = MatchKeyword("DISTINCT");

    // Select list.
    while (true) {
      SelectItem item;
      auto expr = ParseValueExpr();
      if (!expr.ok()) return expr.status();
      item.expr = std::move(expr).value();
      if (MatchKeyword("AS")) {
        if (Peek().type != TokenType::kIdentifier) return Error("expected alias");
        item.alias = Advance().text;
      } else if (Peek().type == TokenType::kIdentifier) {
        item.alias = Advance().text;
      }
      stmt->items.push_back(std::move(item));
      if (!Match(TokenType::kComma)) break;
    }

    if (!MatchKeyword("FROM")) return Error("expected FROM");
    auto from = ParseTableRef();
    if (!from.ok()) return from.status();
    stmt->from = std::move(from).value();

    // Joins.
    while (true) {
      JoinType type;
      if (MatchKeyword("JOIN")) {
        type = JoinType::kInner;
      } else if (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN")) {
        Advance();  // INNER
        Advance();  // JOIN
        type = JoinType::kInner;
      } else if (Peek().IsKeyword("LEFT") || Peek().IsKeyword("RIGHT") ||
                 Peek().IsKeyword("FULL")) {
        std::string side = Advance().text;
        MatchKeyword("OUTER");
        if (!MatchKeyword("JOIN")) return Error("expected JOIN");
        type = side == "LEFT"    ? JoinType::kLeft
               : side == "RIGHT" ? JoinType::kRight
                                 : JoinType::kFull;
      } else if (Peek().IsKeyword("CROSS") && Peek(1).IsKeyword("JOIN")) {
        Advance();
        Advance();
        type = JoinType::kCross;
      } else {
        break;
      }
      JoinClause join;
      join.type = type;
      auto ref = ParseTableRef();
      if (!ref.ok()) return ref.status();
      join.ref = std::move(ref).value();
      if (type != JoinType::kCross) {
        if (!MatchKeyword("ON")) return Error("expected ON");
        auto cond = ParsePredicate();
        if (!cond.ok()) return cond.status();
        join.condition = std::move(cond).value();
      }
      stmt->joins.push_back(std::move(join));
    }

    if (MatchKeyword("WHERE")) {
      auto where = ParsePredicate();
      if (!where.ok()) return where.status();
      stmt->where = std::move(where).value();
    }
    if (MatchKeyword("GROUP")) {
      if (!MatchKeyword("BY")) return Error("expected BY after GROUP");
      while (true) {
        auto expr = ParseValueExpr();
        if (!expr.ok()) return expr.status();
        stmt->group_by.push_back(std::move(expr).value());
        if (!Match(TokenType::kComma)) break;
      }
    }
    if (MatchKeyword("HAVING")) {
      auto having = ParsePredicate();
      if (!having.ok()) return having.status();
      stmt->having = std::move(having).value();
    }
    if (MatchKeyword("ORDER")) {
      if (!MatchKeyword("BY")) return Error("expected BY after ORDER");
      while (true) {
        OrderItem item;
        auto expr = ParseValueExpr();
        if (!expr.ok()) return expr.status();
        item.expr = std::move(expr).value();
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
        if (!Match(TokenType::kComma)) break;
      }
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kNumber) return Error("expected LIMIT count");
      stmt->limit = static_cast<int64_t>(std::strtod(Advance().text.c_str(), nullptr));
    }
    return stmt;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (Match(TokenType::kLeftParen)) {
      auto sub = ParseSelectBody();
      if (!sub.ok()) return sub.status();
      ref.subquery = std::move(sub).value();
      if (!Match(TokenType::kRightParen)) return Error("expected ')'");
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.table = Advance().text;
    } else {
      return Error("expected table name or subquery");
    }
    if (MatchKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) return Error("expected alias");
      ref.alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      ref.alias = Advance().text;
    }
    if (ref.IsSubquery() && ref.alias.empty()) {
      return Error("subquery in FROM requires an alias");
    }
    return ref;
  }

  Result<ExprPtr> ParsePredicate() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs.status();
    ExprPtr result = std::move(lhs).value();
    while (MatchKeyword("OR")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs.status();
      result = MakeOr(std::move(result), std::move(rhs).value());
    }
    return result;
  }

  Result<ExprPtr> ParseAnd() {
    auto lhs = ParseUnary();
    if (!lhs.ok()) return lhs.status();
    ExprPtr result = std::move(lhs).value();
    while (MatchKeyword("AND")) {
      auto rhs = ParseUnary();
      if (!rhs.ok()) return rhs.status();
      result = MakeAnd(std::move(result), std::move(rhs).value());
    }
    return result;
  }

  Result<ExprPtr> ParseUnary() {
    DepthScope scope(this);
    PRESTROID_RETURN_NOT_OK(CheckDepth());
    if (MatchKeyword("NOT")) {
      auto inner = ParseUnary();
      if (!inner.ok()) return inner.status();
      return MakeNot(std::move(inner).value());
    }
    return ParsePrimaryPredicate();
  }

  // Lookahead to distinguish a parenthesized predicate from a parenthesized
  // value expression: both start with '('. We try the predicate first.
  Result<ExprPtr> ParsePrimaryPredicate() {
    DepthScope scope(this);
    PRESTROID_RETURN_NOT_OK(CheckDepth());
    if (Peek().type == TokenType::kLeftParen && LooksLikeNestedPredicate()) {
      Advance();  // consume '('
      auto inner = ParsePredicate();
      if (!inner.ok()) return inner.status();
      if (!Match(TokenType::kRightParen)) return Error("expected ')'");
      return inner;
    }
    return ParseComparison();
  }

  /// Scans ahead from a '(' to decide whether it encloses a boolean
  /// predicate (contains AND/OR/NOT/comparison at depth 1).
  bool LooksLikeNestedPredicate() const {
    size_t i = pos_ + 1;
    int depth = 1;
    while (i < tokens_.size() && depth > 0) {
      const Token& t = tokens_[i];
      if (t.type == TokenType::kLeftParen) ++depth;
      if (t.type == TokenType::kRightParen) --depth;
      if (depth >= 1 &&
          (t.IsKeyword("AND") || t.IsKeyword("OR") || t.IsKeyword("NOT") ||
           t.IsKeyword("IN") || t.IsKeyword("BETWEEN") || t.IsKeyword("LIKE") ||
           t.IsKeyword("IS") ||
           (t.type == TokenType::kOperator &&
            (t.text == "=" || t.text == "<" || t.text == ">" ||
             t.text == "<=" || t.text == ">=" || t.text == "<>" ||
             t.text == "!=")))) {
        return true;
      }
      ++i;
    }
    return false;
  }

  Result<ExprPtr> ParseComparison() {
    auto lhs = ParseValueExpr();
    if (!lhs.ok()) return lhs.status();
    ExprPtr value = std::move(lhs).value();

    if (Peek().type == TokenType::kOperator) {
      const std::string op = Peek().text;
      if (op == "=" || op == "<" || op == ">" || op == "<=" || op == ">=" ||
          op == "<>" || op == "!=") {
        Advance();
        auto rhs = ParseValueExpr();
        if (!rhs.ok()) return rhs.status();
        return MakeCompare(op, std::move(value), std::move(rhs).value());
      }
    }
    if (MatchKeyword("IN")) {
      if (!Match(TokenType::kLeftParen)) return Error("expected '(' after IN");
      std::vector<ExprPtr> values;
      while (true) {
        auto v = ParseValueExpr();
        if (!v.ok()) return v.status();
        values.push_back(std::move(v).value());
        if (!Match(TokenType::kComma)) break;
      }
      if (!Match(TokenType::kRightParen)) return Error("expected ')'");
      return MakeIn(std::move(value), std::move(values));
    }
    if (MatchKeyword("BETWEEN")) {
      auto lo = ParseValueExpr();
      if (!lo.ok()) return lo.status();
      if (!MatchKeyword("AND")) return Error("expected AND in BETWEEN");
      auto hi = ParseValueExpr();
      if (!hi.ok()) return hi.status();
      return MakeBetween(std::move(value), std::move(lo).value(),
                         std::move(hi).value());
    }
    if (MatchKeyword("LIKE")) {
      auto pattern = ParseValueExpr();
      if (!pattern.ok()) return pattern.status();
      return MakeLike(std::move(value), std::move(pattern).value());
    }
    if (MatchKeyword("IS")) {
      bool negated = MatchKeyword("NOT");
      if (!MatchKeyword("NULL")) return Error("expected NULL after IS");
      return MakeIsNull(std::move(value), negated);
    }
    // A bare value expression in predicate position (e.g. join keys compared
    // via ON a.x = b.y is handled above). Treat as error to surface bugs.
    return Error("expected comparison operator");
  }

  Result<ExprPtr> ParseValueExpr() { return ParseAdditive(); }

  Result<ExprPtr> ParseAdditive() {
    auto lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs.status();
    ExprPtr result = std::move(lhs).value();
    while (Peek().IsOperator("+") || Peek().IsOperator("-")) {
      std::string op = Advance().text;
      auto rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs.status();
      result = MakeBinary(op, std::move(result), std::move(rhs).value());
    }
    return result;
  }

  Result<ExprPtr> ParseMultiplicative() {
    auto lhs = ParseFactor();
    if (!lhs.ok()) return lhs.status();
    ExprPtr result = std::move(lhs).value();
    while (Peek().IsOperator("*") || Peek().IsOperator("/") ||
           Peek().IsOperator("%")) {
      // '*' directly after SELECT/(, or before FROM, is the star item, not a
      // multiplication; star never reaches here because ParseFactor consumes it.
      std::string op = Advance().text;
      auto rhs = ParseFactor();
      if (!rhs.ok()) return rhs.status();
      result = MakeBinary(op, std::move(result), std::move(rhs).value());
    }
    return result;
  }

  Result<ExprPtr> ParseFactor() {
    DepthScope scope(this);
    PRESTROID_RETURN_NOT_OK(CheckDepth());
    const Token& t = Peek();
    if (t.IsOperator("*")) {
      Advance();
      return MakeStar();
    }
    if (t.IsOperator("-")) {
      Advance();
      if (Peek().type == TokenType::kNumber) {
        return MakeNumber(-std::strtod(Advance().text.c_str(), nullptr));
      }
      auto inner = ParseFactor();
      if (!inner.ok()) return inner.status();
      return MakeBinary("-", MakeNumber(0), std::move(inner).value());
    }
    if (t.type == TokenType::kNumber) {
      return MakeNumber(std::strtod(Advance().text.c_str(), nullptr));
    }
    if (t.type == TokenType::kString) {
      return MakeString(Advance().text);
    }
    if (t.IsKeyword("NULL")) {
      Advance();
      return MakeNull();
    }
    // Aggregate functions are keywords in this dialect.
    if ((t.IsKeyword("COUNT") || t.IsKeyword("SUM") || t.IsKeyword("AVG") ||
         t.IsKeyword("MIN") || t.IsKeyword("MAX")) &&
        Peek(1).type == TokenType::kLeftParen) {
      std::string fname = Advance().text;
      Advance();  // '('
      std::vector<ExprPtr> args;
      if (!Match(TokenType::kRightParen)) {
        MatchKeyword("DISTINCT");  // tolerated, not tracked per-arg
        while (true) {
          auto arg = ParseValueExpr();
          if (!arg.ok()) return arg.status();
          args.push_back(std::move(arg).value());
          if (!Match(TokenType::kComma)) break;
        }
        if (!Match(TokenType::kRightParen)) return Error("expected ')'");
      }
      return MakeFuncCall(std::move(fname), std::move(args));
    }
    if (t.type == TokenType::kIdentifier) {
      std::string first = Advance().text;
      if (Match(TokenType::kDot)) {
        if (Peek().type == TokenType::kIdentifier) {
          return MakeColumn(first, Advance().text);
        }
        if (Peek().IsOperator("*")) {
          Advance();
          return MakeColumn(first, "*");
        }
        return Error("expected column after '.'");
      }
      if (Peek().type == TokenType::kLeftParen) {
        // Non-aggregate scalar function call.
        Advance();
        std::vector<ExprPtr> args;
        if (!Match(TokenType::kRightParen)) {
          while (true) {
            auto arg = ParseValueExpr();
            if (!arg.ok()) return arg.status();
            args.push_back(std::move(arg).value());
            if (!Match(TokenType::kComma)) break;
          }
          if (!Match(TokenType::kRightParen)) return Error("expected ')'");
        }
        return MakeFuncCall(std::move(first), std::move(args));
      }
      return MakeColumn("", std::move(first));
    }
    if (Match(TokenType::kLeftParen)) {
      auto inner = ParseValueExpr();
      if (!inner.ok()) return inner.status();
      if (!Match(TokenType::kRightParen)) return Error("expected ')'");
      return inner;
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  ParseLimits limits_;
  size_t pos_ = 0;
  size_t depth_ = 0;
};

Result<std::vector<Token>> TokenizeLimited(const std::string& text,
                                           const ParseLimits& limits) {
  auto tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  if (tokens->size() > limits.max_tokens) {
    return Status::ResourceExhausted(StrFormat(
        "input exceeds token limit (%zu tokens > %zu)", tokens->size(),
        limits.max_tokens));
  }
  return tokens;
}

}  // namespace

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql) {
  return ParseSelect(sql, ParseLimits{});
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql,
                                                const ParseLimits& limits) {
  auto tokens = TokenizeLimited(sql, limits);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), limits);
  return parser.ParseStatement();
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  return ParseExpression(text, ParseLimits{});
}

Result<ExprPtr> ParseExpression(const std::string& text,
                                const ParseLimits& limits) {
  auto tokens = TokenizeLimited(text, limits);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value(), limits);
  return parser.ParseStandaloneExpression();
}

}  // namespace prestroid::sql
