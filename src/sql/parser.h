#ifndef PRESTROID_SQL_PARSER_H_
#define PRESTROID_SQL_PARSER_H_

#include <memory>
#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace prestroid::sql {

/// Parses a mini-SQL SELECT statement (the dialect used by the workload
/// generators and the Prestroid pipeline). Returns ParseError on malformed
/// input — never aborts.
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql);

/// Parses a standalone predicate/scalar expression (used by the plan-text
/// round-trip and by tests).
Result<ExprPtr> ParseExpression(const std::string& text);

}  // namespace prestroid::sql

#endif  // PRESTROID_SQL_PARSER_H_
