#ifndef PRESTROID_SQL_PARSER_H_
#define PRESTROID_SQL_PARSER_H_

#include <memory>
#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace prestroid::sql {

/// Resource guard for one parse. The recursive-descent parser consumes
/// thread stack proportional to expression nesting, so `max_depth` is a hard
/// cap (kResourceExhausted beyond it) rather than a tunable suggestion;
/// `max_tokens` bounds work and allocation up front.
struct ParseLimits {
  size_t max_tokens = 100000;
  size_t max_depth = 200;
};

/// Parses a mini-SQL SELECT statement (the dialect used by the workload
/// generators and the Prestroid pipeline). Returns ParseError on malformed
/// input and kResourceExhausted on inputs over the limits — never aborts.
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql);
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql,
                                                const ParseLimits& limits);

/// Parses a standalone predicate/scalar expression (used by the plan-text
/// round-trip and by tests).
Result<ExprPtr> ParseExpression(const std::string& text);
Result<ExprPtr> ParseExpression(const std::string& text,
                                const ParseLimits& limits);

}  // namespace prestroid::sql

#endif  // PRESTROID_SQL_PARSER_H_
