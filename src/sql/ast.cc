#include "sql/ast.h"

#include <cmath>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::sql {

const char* ExprKindToString(ExprKind kind) {
  switch (kind) {
    case ExprKind::kColumn:
      return "Column";
    case ExprKind::kNumberLit:
      return "Number";
    case ExprKind::kStringLit:
      return "String";
    case ExprKind::kNullLit:
      return "Null";
    case ExprKind::kStar:
      return "Star";
    case ExprKind::kBinary:
      return "Binary";
    case ExprKind::kCompare:
      return "Compare";
    case ExprKind::kAnd:
      return "And";
    case ExprKind::kOr:
      return "Or";
    case ExprKind::kNot:
      return "Not";
    case ExprKind::kIn:
      return "In";
    case ExprKind::kBetween:
      return "Between";
    case ExprKind::kLike:
      return "Like";
    case ExprKind::kIsNull:
      return "IsNull";
    case ExprKind::kFuncCall:
      return "FuncCall";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->table = table;
  copy->name = name;
  copy->number = number;
  copy->str = str;
  copy->op = op;
  copy->children.reserve(children.size());
  for (const ExprPtr& child : children) copy->children.push_back(child->Clone());
  return copy;
}

namespace {

std::string FormatNumber(double value) {
  if (value == static_cast<int64_t>(value) && std::abs(value) < 9e15) {
    return StrFormat("%lld", static_cast<long long>(value));
  }
  // Plain decimal notation (never scientific) so the lexer can re-read it.
  std::string out = StrFormat("%.6f", value);
  while (!out.empty() && out.back() == '0') out.pop_back();
  if (!out.empty() && out.back() == '.') out.pop_back();
  return out;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kColumn:
      return table.empty() ? name : table + "." + name;
    case ExprKind::kNumberLit:
      return FormatNumber(number);
    case ExprKind::kStringLit:
      return "'" + str + "'";
    case ExprKind::kNullLit:
      return "NULL";
    case ExprKind::kStar:
      return "*";
    case ExprKind::kBinary:
    case ExprKind::kCompare:
      return "(" + children[0]->ToString() + " " + op + " " +
             children[1]->ToString() + ")";
    case ExprKind::kAnd:
      return "(" + children[0]->ToString() + " AND " +
             children[1]->ToString() + ")";
    case ExprKind::kOr:
      return "(" + children[0]->ToString() + " OR " +
             children[1]->ToString() + ")";
    case ExprKind::kNot:
      return "(NOT " + children[0]->ToString() + ")";
    case ExprKind::kIn: {
      std::string out = children[0]->ToString() + " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kBetween:
      return children[0]->ToString() + " BETWEEN " + children[1]->ToString() +
             " AND " + children[2]->ToString();
    case ExprKind::kLike:
      return children[0]->ToString() + " LIKE " + children[1]->ToString();
    case ExprKind::kIsNull:
      return children[0]->ToString() + " IS " + (op == "NOT" ? "NOT " : "") +
             "NULL";
    case ExprKind::kFuncCall: {
      std::string out = name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

ExprPtr MakeColumn(std::string table, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumn;
  e->table = std::move(table);
  e->name = std::move(name);
  return e;
}

ExprPtr MakeNumber(double value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNumberLit;
  e->number = value;
  return e;
}

ExprPtr MakeString(std::string value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStringLit;
  e->str = std::move(value);
  return e;
}

ExprPtr MakeNull() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kNullLit;
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

namespace {
ExprPtr MakeWithChildren(ExprKind kind, std::string op,
                         std::vector<ExprPtr> children) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->op = std::move(op);
  e->children = std::move(children);
  return e;
}
}  // namespace

ExprPtr MakeCompare(std::string op, ExprPtr lhs, ExprPtr rhs) {
  std::vector<ExprPtr> ch;
  ch.push_back(std::move(lhs));
  ch.push_back(std::move(rhs));
  return MakeWithChildren(ExprKind::kCompare, std::move(op), std::move(ch));
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  std::vector<ExprPtr> ch;
  ch.push_back(std::move(lhs));
  ch.push_back(std::move(rhs));
  return MakeWithChildren(ExprKind::kBinary, std::move(op), std::move(ch));
}

ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs) {
  std::vector<ExprPtr> ch;
  ch.push_back(std::move(lhs));
  ch.push_back(std::move(rhs));
  return MakeWithChildren(ExprKind::kAnd, "AND", std::move(ch));
}

ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs) {
  std::vector<ExprPtr> ch;
  ch.push_back(std::move(lhs));
  ch.push_back(std::move(rhs));
  return MakeWithChildren(ExprKind::kOr, "OR", std::move(ch));
}

ExprPtr MakeNot(ExprPtr inner) {
  std::vector<ExprPtr> ch;
  ch.push_back(std::move(inner));
  return MakeWithChildren(ExprKind::kNot, "NOT", std::move(ch));
}

ExprPtr MakeIn(ExprPtr lhs, std::vector<ExprPtr> values) {
  std::vector<ExprPtr> ch;
  ch.push_back(std::move(lhs));
  for (ExprPtr& v : values) ch.push_back(std::move(v));
  return MakeWithChildren(ExprKind::kIn, "IN", std::move(ch));
}

ExprPtr MakeBetween(ExprPtr value, ExprPtr lo, ExprPtr hi) {
  std::vector<ExprPtr> ch;
  ch.push_back(std::move(value));
  ch.push_back(std::move(lo));
  ch.push_back(std::move(hi));
  return MakeWithChildren(ExprKind::kBetween, "BETWEEN", std::move(ch));
}

ExprPtr MakeLike(ExprPtr lhs, ExprPtr pattern) {
  std::vector<ExprPtr> ch;
  ch.push_back(std::move(lhs));
  ch.push_back(std::move(pattern));
  return MakeWithChildren(ExprKind::kLike, "LIKE", std::move(ch));
}

ExprPtr MakeIsNull(ExprPtr value, bool negated) {
  std::vector<ExprPtr> ch;
  ch.push_back(std::move(value));
  return MakeWithChildren(ExprKind::kIsNull, negated ? "NOT" : "", std::move(ch));
}

ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args) {
  auto e = MakeWithChildren(ExprKind::kFuncCall, "", std::move(args));
  e->name = std::move(name);
  return e;
}

const char* JoinTypeToString(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "INNER";
    case JoinType::kLeft:
      return "LEFT";
    case JoinType::kRight:
      return "RIGHT";
    case JoinType::kFull:
      return "FULL";
    case JoinType::kCross:
      return "CROSS";
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  if (distinct) os << "DISTINCT ";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << ", ";
    os << items[i].expr->ToString();
    if (!items[i].alias.empty()) os << " AS " << items[i].alias;
  }
  os << " FROM ";
  if (from.IsSubquery()) {
    os << "(" << from.subquery->ToString() << ")";
  } else {
    os << from.table;
  }
  if (!from.alias.empty()) os << " AS " << from.alias;
  for (const JoinClause& join : joins) {
    os << " " << JoinTypeToString(join.type) << " JOIN ";
    if (join.ref.IsSubquery()) {
      os << "(" << join.ref.subquery->ToString() << ")";
    } else {
      os << join.ref.table;
    }
    if (!join.ref.alias.empty()) os << " AS " << join.ref.alias;
    if (join.condition != nullptr) os << " ON " << join.condition->ToString();
  }
  if (where != nullptr) os << " WHERE " << where->ToString();
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i]->ToString();
    }
  }
  if (having != nullptr) os << " HAVING " << having->ToString();
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << order_by[i].expr->ToString();
      if (order_by[i].descending) os << " DESC";
    }
  }
  if (limit.has_value()) os << " LIMIT " << *limit;
  return os.str();
}

}  // namespace prestroid::sql
