#ifndef PRESTROID_SQL_AST_H_
#define PRESTROID_SQL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace prestroid::sql {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;
struct SelectStmt;

/// Expression node kinds covering the mini-SQL dialect's predicates and
/// scalar expressions.
enum class ExprKind {
  kColumn,     // [table.]name
  kNumberLit,  // numeric literal
  kStringLit,  // 'string' literal
  kNullLit,    // NULL
  kStar,       // * in SELECT or COUNT(*)
  kBinary,     // arithmetic: + - * / %
  kCompare,    // = <> != < <= > >=
  kAnd,        // conjunction (n-ary flattened to binary at parse time)
  kOr,
  kNot,
  kIn,         // children[0] IN (children[1..])
  kBetween,    // children[0] BETWEEN children[1] AND children[2]
  kLike,       // children[0] LIKE children[1]
  kIsNull,     // children[0] IS [NOT] NULL, negated flag in `op` == "NOT"
  kFuncCall,   // name(children...) - aggregates COUNT/SUM/AVG/MIN/MAX
};

const char* ExprKindToString(ExprKind kind);

/// Generic expression tree node. Fields are used per kind (see ExprKind).
struct Expr {
  ExprKind kind;
  /// kColumn: optional qualifier; kFuncCall: function name.
  std::string table;
  /// kColumn: column name; kFuncCall: function name; kIsNull: "NOT" if
  /// negated; kBinary/kCompare: operator text.
  std::string name;
  double number = 0.0;  // kNumberLit
  std::string str;      // kStringLit
  std::string op;       // kBinary/kCompare operator; kIsNull negation marker
  std::vector<ExprPtr> children;

  /// Deep copy.
  ExprPtr Clone() const;
  /// Round-trippable SQL text.
  std::string ToString() const;
};

/// Factory helpers used by the parser, the planner and the query generator.
ExprPtr MakeColumn(std::string table, std::string name);
ExprPtr MakeNumber(double value);
ExprPtr MakeString(std::string value);
ExprPtr MakeNull();
ExprPtr MakeStar();
ExprPtr MakeCompare(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeAnd(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeOr(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeNot(ExprPtr inner);
ExprPtr MakeIn(ExprPtr lhs, std::vector<ExprPtr> values);
ExprPtr MakeBetween(ExprPtr value, ExprPtr lo, ExprPtr hi);
ExprPtr MakeLike(ExprPtr lhs, ExprPtr pattern);
ExprPtr MakeIsNull(ExprPtr value, bool negated);
ExprPtr MakeFuncCall(std::string name, std::vector<ExprPtr> args);

/// Join flavours supported by the dialect.
enum class JoinType { kInner, kLeft, kRight, kFull, kCross };
const char* JoinTypeToString(JoinType type);

/// One item of the SELECT list.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none
};

/// A base table or a parenthesized sub-select in FROM.
struct TableRef {
  std::string table;  // empty for subqueries
  std::string alias;  // empty if none
  std::unique_ptr<SelectStmt> subquery;

  bool IsSubquery() const { return subquery != nullptr; }
  /// The name this relation is visible as (alias if set, else table).
  std::string VisibleName() const { return alias.empty() ? table : alias; }
};

/// JOIN <ref> ON <condition>.
struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef ref;
  ExprPtr condition;  // null for CROSS JOIN
};

/// ORDER BY item.
struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// A parsed SELECT statement.
struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;   // null if absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // null if absent
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;

  /// Round-trippable SQL text.
  std::string ToString() const;
};

}  // namespace prestroid::sql

#endif  // PRESTROID_SQL_AST_H_
