#ifndef PRESTROID_SQL_TOKEN_H_
#define PRESTROID_SQL_TOKEN_H_

#include <string>

namespace prestroid::sql {

/// Lexical token categories for the mini-SQL dialect.
enum class TokenType {
  kIdentifier,   // table_a, col_1 (also dotted parts, lexed separately)
  kKeyword,      // SELECT, FROM, WHERE, ... (uppercased in `text`)
  kNumber,       // 42, 3.14, -7
  kString,       // 'abc'
  kOperator,     // = <> != < <= > >= + - * / %
  kComma,
  kDot,
  kLeftParen,
  kRightParen,
  kEnd,          // end of input
};

const char* TokenTypeToString(TokenType type);

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // keywords are normalized to upper case
  size_t offset = 0;

  bool IsKeyword(const char* kw) const;
  bool IsOperator(const char* op) const;
};

/// True if `word` (case-insensitive) is a reserved keyword of the dialect.
bool IsReservedKeyword(const std::string& upper_word);

}  // namespace prestroid::sql

#endif  // PRESTROID_SQL_TOKEN_H_
