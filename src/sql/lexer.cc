#include "sql/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace prestroid::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(input[j])) ++j;
      std::string word = input.substr(i, j - i);
      std::string upper = ToUpper(word);
      Token token;
      token.offset = start;
      if (IsReservedKeyword(upper)) {
        token.type = TokenType::kKeyword;
        token.text = upper;
      } else {
        token.type = TokenType::kIdentifier;
        token.text = word;
      }
      tokens.push_back(std::move(token));
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       (input[j] == '.' && !seen_dot))) {
        if (input[j] == '.') seen_dot = true;
        ++j;
      }
      // Optional exponent: e[+-]?digits.
      if (j < n && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) {
          while (k < n && std::isdigit(static_cast<unsigned char>(input[k]))) ++k;
          j = k;
        }
      }
      tokens.push_back({TokenType::kNumber, input.substr(i, j - i), start});
      i = j;
    } else if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {
            value.push_back('\'');
            j += 2;
          } else {
            closed = true;
            ++j;
            break;
          }
        } else {
          value.push_back(input[j]);
          ++j;
        }
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", start));
      }
      tokens.push_back({TokenType::kString, std::move(value), start});
      i = j;
    } else {
      switch (c) {
        case ',':
          tokens.push_back({TokenType::kComma, ",", start});
          ++i;
          break;
        case '.':
          tokens.push_back({TokenType::kDot, ".", start});
          ++i;
          break;
        case '(':
          tokens.push_back({TokenType::kLeftParen, "(", start});
          ++i;
          break;
        case ')':
          tokens.push_back({TokenType::kRightParen, ")", start});
          ++i;
          break;
        case '<':
          if (i + 1 < n && (input[i + 1] == '=' || input[i + 1] == '>')) {
            tokens.push_back(
                {TokenType::kOperator, input.substr(i, 2), start});
            i += 2;
          } else {
            tokens.push_back({TokenType::kOperator, "<", start});
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && input[i + 1] == '=') {
            tokens.push_back({TokenType::kOperator, ">=", start});
            i += 2;
          } else {
            tokens.push_back({TokenType::kOperator, ">", start});
            ++i;
          }
          break;
        case '!':
          if (i + 1 < n && input[i + 1] == '=') {
            tokens.push_back({TokenType::kOperator, "!=", start});
            i += 2;
          } else {
            return Status::ParseError(
                StrFormat("unexpected '!' at offset %zu", start));
          }
          break;
        case '=':
        case '+':
        case '-':
        case '*':
        case '/':
        case '%':
          tokens.push_back({TokenType::kOperator, std::string(1, c), start});
          ++i;
          break;
        default:
          return Status::ParseError(
              StrFormat("unexpected character '%c' at offset %zu", c, start));
      }
    }
  }
  tokens.push_back({TokenType::kEnd, "", n});
  return tokens;
}

}  // namespace prestroid::sql
