#ifndef PRESTROID_SQL_LEXER_H_
#define PRESTROID_SQL_LEXER_H_

#include <string>
#include <vector>

#include "sql/token.h"
#include "util/status.h"

namespace prestroid::sql {

/// Tokenizes a mini-SQL string. Identifiers are kept as written; keywords are
/// recognized case-insensitively and normalized to upper case. String literals
/// use single quotes with '' as the escape.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace prestroid::sql

#endif  // PRESTROID_SQL_LEXER_H_
