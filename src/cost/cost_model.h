#ifndef PRESTROID_COST_COST_MODEL_H_
#define PRESTROID_COST_COST_MODEL_H_

#include "plan/catalog.h"
#include "plan/plan_node.h"
#include "util/random.h"
#include "util/status.h"

namespace prestroid::cost {

/// Tunable constants of the analytical execution model. The defaults are
/// calibrated so that the synthetic Grab-like workload lands in the paper's
/// 1–60 total-CPU-minute filter band.
struct CostModelParams {
  /// Simulated cluster CPU throughput: abstract cost units per CPU-minute.
  double cost_units_per_cpu_minute = 4.0e8;
  double scan_cost_per_byte = 0.03;
  double filter_cost_per_row = 0.6;
  double join_build_cost_per_row = 4.0;
  double join_probe_cost_per_row = 2.5;
  double aggregate_cost_per_row = 2.0;
  double sort_cost_per_row_log_row = 0.8;
  double exchange_cost_per_row = 1.0;
  double project_cost_per_row_expr = 0.3;
  /// Default equality selectivity when column stats are unavailable.
  double default_eq_selectivity = 0.005;
  double default_range_selectivity = 0.3;
  double like_selectivity = 0.08;
  /// Join selectivity when key statistics are unavailable.
  double default_join_selectivity = 1e-5;
  /// Multiplicative log-normal label noise (sigma of the underlying normal).
  /// Models run-to-run variance of a real cluster.
  double noise_sigma = 0.15;
  /// Saturation cap on any operator's output cardinality: a distributed
  /// engine spills/limits intermediates long before they reach astronomic
  /// sizes, so deep join pipelines compound sub-exponentially.
  double max_intermediate_rows = 5e8;
};

/// Resource-consumption outcome of one simulated query execution — the
/// metrics the paper reads from the Presto profiler (total CPU time, peak
/// memory, input bytes; Appendix A).
struct ExecutionMetrics {
  double total_cpu_minutes = 0.0;
  double peak_memory_gb = 0.0;
  double input_gb = 0.0;
};

/// Analytical cost model over logical plans: estimates per-operator output
/// cardinalities from catalog statistics, converts operator work into CPU
/// time, and adds calibrated noise to produce training labels. This is the
/// substitution for executing queries on a Presto cluster (DESIGN.md §2).
class CostModel {
 public:
  CostModel(const plan::Catalog* catalog, CostModelParams params = {});

  /// Estimates selectivity of a predicate applied to rows of `table`
  /// (nullptr table falls back to default selectivities). Returned value is
  /// clamped to [1e-6, 1].
  double PredicateSelectivity(const sql::Expr& predicate,
                              const plan::TableDef* table) const;

  /// Annotates every node's `cardinality` and returns the noiseless total
  /// CPU time in minutes. Fails if a scanned table is missing from the
  /// catalog.
  Result<double> EstimateCpuMinutes(plan::PlanNode* root) const;

  /// Full simulated execution: noiseless estimate + log-normal noise, plus
  /// derived peak-memory and input-size metrics. Deterministic given `rng`.
  Result<ExecutionMetrics> Execute(plan::PlanNode* root, Rng* rng) const;

  const CostModelParams& params() const { return params_; }

 private:
  /// Returns output cardinality; accumulates cost units into *cost.
  Result<double> Annotate(plan::PlanNode* node, double* cost_units,
                          double* peak_rows, double* input_bytes) const;

  const plan::Catalog* catalog_;
  CostModelParams params_;
};

}  // namespace prestroid::cost

#endif  // PRESTROID_COST_COST_MODEL_H_
