#include "cost/serving_estimator.h"

#include <chrono>
#include <cmath>

#include "plan/plan_stats.h"
#include "util/logging.h"
#include "workload/dataset.h"

namespace prestroid::cost {

namespace {

constexpr double kLatencyEwmaAlpha = 0.2;

double ElapsedMs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

const char* ServingTierToString(ServingTier tier) {
  switch (tier) {
    case ServingTier::kModel:
      return "model";
    case ServingTier::kLogBinning:
      return "log-binning";
    case ServingTier::kGlobalMean:
      return "global-mean";
  }
  return "unknown";
}

ServingEstimator::ServingEstimator(ServingLimits limits)
    : limits_(limits), bins_(limits.log_bins) {}

void ServingEstimator::AttachPipeline(
    std::unique_ptr<core::PrestroidPipeline> pipeline) {
  pipeline_ = std::move(pipeline);
}

Status ServingEstimator::FitFallbacks(
    const std::vector<workload::QueryRecord>& records) {
  if (records.empty()) {
    return Status::InvalidArgument("cannot fit fallbacks on an empty trace");
  }
  std::vector<double> node_counts;
  std::vector<double> minutes;
  node_counts.reserve(records.size());
  minutes.reserve(records.size());
  for (const workload::QueryRecord& record : records) {
    node_counts.push_back(static_cast<double>(
        plan::ComputePlanStats(*record.plan).node_count));
    minutes.push_back(record.metrics.total_cpu_minutes);
  }
  PRESTROID_RETURN_NOT_OK(transform_.Fit(minutes));
  PRESTROID_RETURN_NOT_OK(bins_.Fit(node_counts, transform_.NormalizeAll(minutes)));
  double total = 0.0;
  for (double m : minutes) total += m;
  global_mean_minutes_ = total / static_cast<double>(minutes.size());
  fallbacks_fitted_ = true;
  return Status::OK();
}

Status ServingEstimator::AdmitModelTier(const plan::PlanStats& plan_stats,
                                        double deadline_ms) {
  if (pipeline_ == nullptr || !model_enabled_) {
    return Status::Unimplemented("model tier unavailable or disabled");
  }
  if (plan_stats.node_count > limits_.max_plan_nodes ||
      plan_stats.max_depth > limits_.max_plan_depth) {
    ++stats_.validation_rejects;
    return Status::InvalidArgument(
        "plan exceeds serving limits (" +
        std::to_string(plan_stats.node_count) + " nodes, depth " +
        std::to_string(plan_stats.max_depth) + ")");
  }
  if (deadline_ms <= 0.0) {
    ++stats_.deadline_skips;
    return Status::OutOfRange(
        "request deadline expired before the model tier could run");
  }
  if (model_latency_ewma_ms_ > deadline_ms) {
    ++stats_.deadline_skips;
    return Status::OutOfRange(
        "model latency EWMA exceeds deadline; degraded pre-emptively");
  }
  return Status::OK();
}

void ServingEstimator::UpdateModelLatency(double model_ms, double deadline_ms) {
  model_latency_ewma_ms_ =
      model_latency_ewma_ms_ == 0.0
          ? model_ms
          : (1.0 - kLatencyEwmaAlpha) * model_latency_ewma_ms_ +
                kLatencyEwmaAlpha * model_ms;
  if (model_ms > deadline_ms) ++stats_.deadline_misses;
}

ServingEstimate ServingEstimator::FinishModelEstimate(double cpu_minutes,
                                                      double latency_ms) {
  ServingEstimate estimate;
  estimate.cpu_minutes = cpu_minutes;
  estimate.tier = ServingTier::kModel;
  estimate.latency_ms = latency_ms;
  ++stats_.by_tier[static_cast<size_t>(ServingTier::kModel)];
  return estimate;
}

ServingEstimate ServingEstimator::EstimateFallback(
    const plan::PlanStats& plan_stats, Status reason,
    std::chrono::steady_clock::time_point start) {
  ServingEstimate estimate;
  estimate.degradation_reason = std::move(reason);

  // --- Tier 1: log-binning over plan node count ---------------------------
  if (fallbacks_fitted_) {
    const float normalized =
        bins_.Predict(static_cast<double>(plan_stats.node_count));
    const double minutes = transform_.Denormalize(normalized);
    if (std::isfinite(minutes)) {
      estimate.cpu_minutes = minutes;
      estimate.tier = ServingTier::kLogBinning;
      estimate.latency_ms = ElapsedMs(start);
      ++stats_.by_tier[static_cast<size_t>(ServingTier::kLogBinning)];
      return estimate;
    }
  }

  // --- Tier 2: global mean — a constant, so it always answers -------------
  estimate.cpu_minutes = global_mean_minutes_;
  estimate.tier = ServingTier::kGlobalMean;
  estimate.latency_ms = ElapsedMs(start);
  ++stats_.by_tier[static_cast<size_t>(ServingTier::kGlobalMean)];
  return estimate;
}

ServingEstimate ServingEstimator::EstimateWithFallback(
    const plan::PlanNode& plan, double deadline_ms) {
  const auto start = std::chrono::steady_clock::now();
  if (deadline_ms <= 0.0) deadline_ms = limits_.default_deadline_ms;
  ++stats_.requests;

  const plan::PlanStats plan_stats = plan::ComputePlanStats(plan);

  // --- Tier 0: the learned model, gated by validation and deadline -------
  Status skip_reason = AdmitModelTier(plan_stats, deadline_ms);
  if (skip_reason.ok()) {
    Result<double> predicted = pipeline_->PredictPlan(plan);
    UpdateModelLatency(ElapsedMs(start), deadline_ms);
    if (predicted.ok() && std::isfinite(*predicted)) {
      return FinishModelEstimate(*predicted, ElapsedMs(start));
    }
    NoteModelFailure();
    skip_reason = predicted.ok()
                      ? Status::Internal("model returned a non-finite estimate")
                      : predicted.status();
  }
  return EstimateFallback(plan_stats, std::move(skip_reason), start);
}

}  // namespace prestroid::cost
