#ifndef PRESTROID_COST_SERVING_ESTIMATOR_H_
#define PRESTROID_COST_SERVING_ESTIMATOR_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "baselines/log_binning.h"
#include "core/label_transform.h"
#include "core/pipeline.h"
#include "plan/plan_node.h"
#include "plan/plan_stats.h"
#include "util/status.h"
#include "workload/trace.h"

namespace prestroid::cost {

/// Which rung of the degradation chain produced an estimate.
enum class ServingTier {
  kModel = 0,      // the trained Prestroid pipeline
  kLogBinning,     // node-count log-binning baseline
  kGlobalMean,     // mean training cost — always available, always finite
};
inline constexpr size_t kNumServingTiers = 3;

const char* ServingTierToString(ServingTier tier);

/// Input-validation and latency limits enforced per request.
struct ServingLimits {
  /// Plans larger/deeper than this skip the model tier (featurization cost
  /// grows with plan size, and such plans are out-of-distribution anyway).
  size_t max_plan_nodes = 4096;
  size_t max_plan_depth = 512;
  /// Deadline applied when EstimateWithFallback is called with
  /// deadline_ms <= 0.
  double default_deadline_ms = 50.0;
  /// Bins for the log-binning fallback (paper: B=1000 for Grab-Traces).
  size_t log_bins = 1000;
};

/// One answered request.
struct ServingEstimate {
  double cpu_minutes = 0.0;
  ServingTier tier = ServingTier::kGlobalMean;
  double latency_ms = 0.0;
  /// OK when the model tier answered; otherwise why serving degraded
  /// (validation reject, deadline skip, model error, non-finite output).
  Status degradation_reason;
};

/// Monotonic per-process serving counters. The estimator itself maintains
/// the request/tier/degradation counters; the queue and cache fields are
/// filled in by the batched serving runtime's snapshots (serve/
/// serving_runtime.h) and stay zero on the direct single-query path.
struct ServingStats {
  size_t requests = 0;
  size_t by_tier[kNumServingTiers] = {0, 0, 0};
  size_t validation_rejects = 0;  // plans too large/deep for the model tier
  size_t deadline_skips = 0;      // model skipped: EWMA latency > budget,
                                  // or the deadline expired while queued
  size_t deadline_misses = 0;     // model answered but blew the deadline
  size_t model_errors = 0;        // model tier failed or returned non-finite

  // --- batched-runtime counters (serve::ServingRuntime snapshots) ---------
  size_t rejected_requests = 0;     // queue-overflow admission rejections
  size_t limit_rejects = 0;         // plans over the PlanLimits governor
  size_t queue_high_watermark = 0;  // max simultaneously queued requests
  size_t cache_hits = 0;            // plan-fingerprint cache hits
  size_t cache_misses = 0;          // featurization re-runs
  size_t cache_evictions = 0;       // LRU evictions

  // --- multi-tenant sharded-tier counters (serve::ShardedServingRuntime
  // snapshots); zero on single-runtime and direct paths ---------------------
  size_t quota_sheds = 0;     // requests shed over a TenantQuota budget
  size_t memory_denied = 0;   // requests shed by the MemoryTracker budget

  // --- low-precision inference counters (serve shards; DESIGN.md §5.8);
  // zero on fp32-only deployments and the direct single-query path ---------
  size_t quantized_batches = 0;     // fused forwards served by a bf16/int8
                                    // resident-kernel pipeline
  size_t precision_fallbacks = 0;   // shards that requested bf16/int8 but had
                                    // to serve fp32 (bad/mismatched profile)

  // --- model-lifecycle counters (serve::ServingRuntime::SwapPipeline and
  // serve::ModelManager snapshots); zero on the direct single-query path ---
  size_t model_swaps = 0;         // successful hot-swap promotions
  size_t model_rollbacks = 0;     // post-swap regressions rolled back
  size_t rejected_candidates = 0; // candidates failing load/shadow validation
  size_t drift_flags = 0;         // observations where the drift gate tripped
  double drift_qerr_p50 = 0.0;    // rolling prediction q-error quantiles
  double drift_qerr_p95 = 0.0;
  double drift_baseline_p95 = 0.0;  // promotion-time baseline the window is
                                    // judged against (0 until established)

  /// Accumulates `other` into this snapshot. Counters sum, including
  /// queue_high_watermark — across shards the sum bounds total queued
  /// requests; per-shard peaks stay available via shard(i) snapshots. The
  /// drift quantiles and baseline take the element-wise max (the merged view
  /// reports the worst shard, which is what the rollback gate cares about).
  void MergeFrom(const ServingStats& other) {
    requests += other.requests;
    for (size_t i = 0; i < kNumServingTiers; ++i) {
      by_tier[i] += other.by_tier[i];
    }
    validation_rejects += other.validation_rejects;
    deadline_skips += other.deadline_skips;
    deadline_misses += other.deadline_misses;
    model_errors += other.model_errors;
    rejected_requests += other.rejected_requests;
    limit_rejects += other.limit_rejects;
    queue_high_watermark += other.queue_high_watermark;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_evictions += other.cache_evictions;
    quota_sheds += other.quota_sheds;
    memory_denied += other.memory_denied;
    quantized_batches += other.quantized_batches;
    precision_fallbacks += other.precision_fallbacks;
    model_swaps += other.model_swaps;
    model_rollbacks += other.model_rollbacks;
    rejected_candidates += other.rejected_candidates;
    drift_flags += other.drift_flags;
    if (other.drift_qerr_p50 > drift_qerr_p50) {
      drift_qerr_p50 = other.drift_qerr_p50;
    }
    if (other.drift_qerr_p95 > drift_qerr_p95) {
      drift_qerr_p95 = other.drift_qerr_p95;
    }
    if (other.drift_baseline_p95 > drift_baseline_p95) {
      drift_baseline_p95 = other.drift_baseline_p95;
    }
  }
};

/// Fault-tolerant serving front end: wraps the learned pipeline with input
/// validation, a per-request deadline, and the degradation chain
/// model -> log-binning -> global mean (CONCERTO-style graceful
/// degradation). EstimateWithFallback never fails: the global-mean tier is
/// a constant and always answers.
class ServingEstimator {
 public:
  explicit ServingEstimator(ServingLimits limits = {});

  /// Attaches the model tier (a fitted/loaded pipeline). Passing nullptr
  /// detaches it. Pipelines restored with LoadFile() carry a single-thread
  /// ExecutionContext — the serving default, keeping per-request latency
  /// predictable and the process thread-count flat.
  void AttachPipeline(std::unique_ptr<core::PrestroidPipeline> pipeline);
  bool has_pipeline() const { return pipeline_ != nullptr; }

  /// Detaches and returns the model tier (nullptr when none was attached).
  /// The hot-swap path uses Release + Attach under the serving lock so the
  /// previous model can be retained for instant rollback.
  std::unique_ptr<core::PrestroidPipeline> ReleasePipeline() {
    return std::move(pipeline_);
  }

  /// Clears the model-tier latency EWMA; called on a model swap so the new
  /// model's deadline admission is not judged by its predecessor's speed.
  void ResetModelLatency() { model_latency_ewma_ms_ = 0.0; }

  /// The attached pipeline's execution context (flops / scratch counters for
  /// observability); nullptr when no pipeline is attached.
  ExecutionContext* execution_context() {
    return pipeline_ == nullptr ? nullptr : pipeline_->execution_context();
  }

  /// Administratively enables/disables the model tier (e.g. while a new
  /// artifact is validated). The fallback chain keeps serving.
  void set_model_enabled(bool enabled) { model_enabled_ = enabled; }
  bool model_enabled() const { return model_enabled_; }

  /// Fits the log-binning and global-mean fallback tiers from a trace.
  Status FitFallbacks(const std::vector<workload::QueryRecord>& records);

  /// Walks the degradation chain and returns the first finite estimate,
  /// recording which tier answered. deadline_ms <= 0 uses the configured
  /// default. Never fails.
  ServingEstimate EstimateWithFallback(const plan::PlanNode& plan,
                                       double deadline_ms = 0.0);

  // --- decomposed pieces for the batched serving runtime ------------------
  // serve::ServingRuntime reuses the exact chain EstimateWithFallback walks,
  // but needs the stages separately: the admission gate before batch
  // assembly, the model-answer bookkeeping after one fused forward pass, and
  // the fallback tiers per degraded item. None of these are thread-safe; the
  // runtime serializes every call on its batch-worker thread.

  /// The attached model pipeline (nullptr when detached). The batched
  /// runtime featurizes and runs fused forward passes through it directly.
  core::PrestroidPipeline* pipeline() { return pipeline_.get(); }

  /// Model-tier admission gate: availability, validation limits, and the
  /// latency-EWMA deadline check, with the matching stats tallied. A
  /// deadline_ms <= 0 here means the request's deadline already expired
  /// (e.g. while queued) and counts as a deadline skip. Returns OK when the
  /// model tier may attempt the plan.
  Status AdmitModelTier(const plan::PlanStats& plan_stats, double deadline_ms);

  /// Folds one model-tier attempt's per-request compute time into the
  /// latency EWMA and tallies a deadline miss when it overran the budget.
  void UpdateModelLatency(double model_ms, double deadline_ms);

  /// Records a finite model-tier answer (tier counter + estimate assembly).
  /// `latency_ms` is the full request latency including any queue wait.
  ServingEstimate FinishModelEstimate(double cpu_minutes, double latency_ms);

  /// Tallies a model-tier failure (error status or non-finite output).
  void NoteModelFailure() { ++stats_.model_errors; }

  /// The tier-1 -> tier-2 degradation path with `reason` recorded; never
  /// fails. Latency is measured from `start` (a queued request passes its
  /// enqueue time so the estimate's latency includes the wait).
  ServingEstimate EstimateFallback(const plan::PlanStats& plan_stats,
                                   Status reason,
                                   std::chrono::steady_clock::time_point start);

  /// Counts one incoming request (EstimateWithFallback does this itself;
  /// the batched runtime calls it once per dequeued request).
  void CountRequest() { ++stats_.requests; }

  const ServingStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ServingStats{}; }
  const ServingLimits& limits() const { return limits_; }

 private:
  ServingLimits limits_;
  std::unique_ptr<core::PrestroidPipeline> pipeline_;
  bool model_enabled_ = true;

  baselines::LogBinningModel bins_;
  core::LabelTransform transform_;
  bool fallbacks_fitted_ = false;
  double global_mean_minutes_ = 1.0;

  /// Exponentially-weighted model-tier latency, used to decide whether the
  /// model can answer within a request's deadline.
  double model_latency_ewma_ms_ = 0.0;

  ServingStats stats_;
};

}  // namespace prestroid::cost

#endif  // PRESTROID_COST_SERVING_ESTIMATOR_H_
