#ifndef PRESTROID_COST_SERVING_ESTIMATOR_H_
#define PRESTROID_COST_SERVING_ESTIMATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/log_binning.h"
#include "core/label_transform.h"
#include "core/pipeline.h"
#include "plan/plan_node.h"
#include "util/status.h"
#include "workload/trace.h"

namespace prestroid::cost {

/// Which rung of the degradation chain produced an estimate.
enum class ServingTier {
  kModel = 0,      // the trained Prestroid pipeline
  kLogBinning,     // node-count log-binning baseline
  kGlobalMean,     // mean training cost — always available, always finite
};
inline constexpr size_t kNumServingTiers = 3;

const char* ServingTierToString(ServingTier tier);

/// Input-validation and latency limits enforced per request.
struct ServingLimits {
  /// Plans larger/deeper than this skip the model tier (featurization cost
  /// grows with plan size, and such plans are out-of-distribution anyway).
  size_t max_plan_nodes = 4096;
  size_t max_plan_depth = 512;
  /// Deadline applied when EstimateWithFallback is called with
  /// deadline_ms <= 0.
  double default_deadline_ms = 50.0;
  /// Bins for the log-binning fallback (paper: B=1000 for Grab-Traces).
  size_t log_bins = 1000;
};

/// One answered request.
struct ServingEstimate {
  double cpu_minutes = 0.0;
  ServingTier tier = ServingTier::kGlobalMean;
  double latency_ms = 0.0;
  /// OK when the model tier answered; otherwise why serving degraded
  /// (validation reject, deadline skip, model error, non-finite output).
  Status degradation_reason;
};

/// Monotonic per-process serving counters.
struct ServingStats {
  size_t requests = 0;
  size_t by_tier[kNumServingTiers] = {0, 0, 0};
  size_t validation_rejects = 0;  // plans too large/deep for the model tier
  size_t deadline_skips = 0;      // model skipped: EWMA latency > budget
  size_t deadline_misses = 0;     // model answered but blew the deadline
  size_t model_errors = 0;        // model tier failed or returned non-finite
};

/// Fault-tolerant serving front end: wraps the learned pipeline with input
/// validation, a per-request deadline, and the degradation chain
/// model -> log-binning -> global mean (CONCERTO-style graceful
/// degradation). EstimateWithFallback never fails: the global-mean tier is
/// a constant and always answers.
class ServingEstimator {
 public:
  explicit ServingEstimator(ServingLimits limits = {});

  /// Attaches the model tier (a fitted/loaded pipeline). Passing nullptr
  /// detaches it. Pipelines restored with LoadFile() carry a single-thread
  /// ExecutionContext — the serving default, keeping per-request latency
  /// predictable and the process thread-count flat.
  void AttachPipeline(std::unique_ptr<core::PrestroidPipeline> pipeline);
  bool has_pipeline() const { return pipeline_ != nullptr; }

  /// The attached pipeline's execution context (flops / scratch counters for
  /// observability); nullptr when no pipeline is attached.
  ExecutionContext* execution_context() {
    return pipeline_ == nullptr ? nullptr : pipeline_->execution_context();
  }

  /// Administratively enables/disables the model tier (e.g. while a new
  /// artifact is validated). The fallback chain keeps serving.
  void set_model_enabled(bool enabled) { model_enabled_ = enabled; }
  bool model_enabled() const { return model_enabled_; }

  /// Fits the log-binning and global-mean fallback tiers from a trace.
  Status FitFallbacks(const std::vector<workload::QueryRecord>& records);

  /// Walks the degradation chain and returns the first finite estimate,
  /// recording which tier answered. deadline_ms <= 0 uses the configured
  /// default. Never fails.
  ServingEstimate EstimateWithFallback(const plan::PlanNode& plan,
                                       double deadline_ms = 0.0);

  const ServingStats& stats() const { return stats_; }
  const ServingLimits& limits() const { return limits_; }

 private:
  ServingLimits limits_;
  std::unique_ptr<core::PrestroidPipeline> pipeline_;
  bool model_enabled_ = true;

  baselines::LogBinningModel bins_;
  core::LabelTransform transform_;
  bool fallbacks_fitted_ = false;
  double global_mean_minutes_ = 1.0;

  /// Exponentially-weighted model-tier latency, used to decide whether the
  /// model can answer within a request's deadline.
  double model_latency_ewma_ms_ = 0.0;

  ServingStats stats_;
};

}  // namespace prestroid::cost

#endif  // PRESTROID_COST_SERVING_ESTIMATOR_H_
