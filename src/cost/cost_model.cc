#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace prestroid::cost {

namespace {

double Clamp01(double s) { return std::clamp(s, 1e-6, 1.0); }

/// Finds the column definition referenced on either side of a comparison.
const plan::ColumnDef* FindComparisonColumn(const sql::Expr& predicate,
                                            const plan::TableDef* table) {
  if (table == nullptr) return nullptr;
  for (const sql::ExprPtr& child : predicate.children) {
    if (child->kind == sql::ExprKind::kColumn) {
      const plan::ColumnDef* col = table->FindColumn(child->name);
      if (col != nullptr) return col;
    }
  }
  return nullptr;
}

/// Extracts the literal operand of a comparison, if any.
const sql::Expr* FindLiteral(const sql::Expr& predicate) {
  for (const sql::ExprPtr& child : predicate.children) {
    if (child->kind == sql::ExprKind::kNumberLit ||
        child->kind == sql::ExprKind::kStringLit) {
      return child.get();
    }
  }
  return nullptr;
}

}  // namespace

CostModel::CostModel(const plan::Catalog* catalog, CostModelParams params)
    : catalog_(catalog), params_(params) {
  PRESTROID_CHECK(catalog != nullptr);
}

double CostModel::PredicateSelectivity(const sql::Expr& predicate,
                                       const plan::TableDef* table) const {
  switch (predicate.kind) {
    case sql::ExprKind::kAnd:
      return Clamp01(PredicateSelectivity(*predicate.children[0], table) *
                     PredicateSelectivity(*predicate.children[1], table));
    case sql::ExprKind::kOr: {
      double a = PredicateSelectivity(*predicate.children[0], table);
      double b = PredicateSelectivity(*predicate.children[1], table);
      return Clamp01(a + b - a * b);
    }
    case sql::ExprKind::kNot:
      return Clamp01(1.0 - PredicateSelectivity(*predicate.children[0], table));
    case sql::ExprKind::kCompare: {
      const plan::ColumnDef* col = FindComparisonColumn(predicate, table);
      const std::string& op = predicate.op;
      if (op == "=") {
        if (col != nullptr && col->num_distinct > 0) {
          return Clamp01(1.0 / col->num_distinct);
        }
        return params_.default_eq_selectivity;
      }
      if (op == "<>" || op == "!=") {
        if (col != nullptr && col->num_distinct > 0) {
          return Clamp01(1.0 - 1.0 / col->num_distinct);
        }
        return Clamp01(1.0 - params_.default_eq_selectivity);
      }
      // Range comparison: fraction of the column's value range.
      const sql::Expr* lit = FindLiteral(predicate);
      if (col != nullptr && lit != nullptr &&
          lit->kind == sql::ExprKind::kNumberLit &&
          col->max_value > col->min_value) {
        double fraction = (lit->number - col->min_value) /
                          (col->max_value - col->min_value);
        fraction = std::clamp(fraction, 0.0, 1.0);
        if (op == "<" || op == "<=") return Clamp01(fraction);
        return Clamp01(1.0 - fraction);  // > or >=
      }
      return params_.default_range_selectivity;
    }
    case sql::ExprKind::kIn: {
      const plan::ColumnDef* col = FindComparisonColumn(predicate, table);
      const double k = static_cast<double>(predicate.children.size()) - 1.0;
      if (col != nullptr && col->num_distinct > 0) {
        return Clamp01(k / col->num_distinct);
      }
      return Clamp01(k * params_.default_eq_selectivity);
    }
    case sql::ExprKind::kBetween: {
      const plan::ColumnDef* col = FindComparisonColumn(predicate, table);
      const sql::Expr* lo = predicate.children[1].get();
      const sql::Expr* hi = predicate.children[2].get();
      if (col != nullptr && lo->kind == sql::ExprKind::kNumberLit &&
          hi->kind == sql::ExprKind::kNumberLit &&
          col->max_value > col->min_value) {
        double fraction =
            (hi->number - lo->number) / (col->max_value - col->min_value);
        return Clamp01(std::max(fraction, 0.0));
      }
      return params_.default_range_selectivity;
    }
    case sql::ExprKind::kLike:
      return params_.like_selectivity;
    case sql::ExprKind::kIsNull:
      return predicate.op == "NOT" ? 0.95 : 0.05;
    default:
      return params_.default_range_selectivity;
  }
}

Result<double> CostModel::Annotate(plan::PlanNode* node, double* cost_units,
                                   double* peak_rows,
                                   double* input_bytes) const {
  using plan::PlanNodeType;
  switch (node->type) {
    case PlanNodeType::kTableScan: {
      auto table = catalog_->GetTable(node->table);
      if (!table.ok()) return table.status();
      const double rows = (*table)->row_count;
      const double bytes = rows * (*table)->row_bytes;
      *cost_units += bytes * params_.scan_cost_per_byte;
      *input_bytes += bytes;
      *peak_rows = std::max(*peak_rows, rows);
      node->cardinality = rows;
      return rows;
    }
    case PlanNodeType::kFilter: {
      PRESTROID_ASSIGN_OR_RETURN(
          double in_rows,
          Annotate(node->children[0].get(), cost_units, peak_rows, input_bytes));
      // If the child chain bottoms out at a single scan, use that table's
      // statistics for selectivity.
      const plan::PlanNode* leaf = node->children[0].get();
      while (!leaf->children.empty()) leaf = leaf->children[0].get();
      const plan::TableDef* table = nullptr;
      if (leaf->type == PlanNodeType::kTableScan) {
        auto t = catalog_->GetTable(leaf->table);
        if (t.ok()) table = *t;
      }
      const double sel = PredicateSelectivity(*node->predicate, table);
      *cost_units += in_rows * params_.filter_cost_per_row;
      node->cardinality = in_rows * sel;
      return node->cardinality;
    }
    case PlanNodeType::kJoin: {
      PRESTROID_ASSIGN_OR_RETURN(
          double left_rows,
          Annotate(node->children[0].get(), cost_units, peak_rows, input_bytes));
      PRESTROID_ASSIGN_OR_RETURN(
          double right_rows,
          Annotate(node->children[1].get(), cost_units, peak_rows, input_bytes));
      double out_rows;
      if (node->join_type == sql::JoinType::kCross ||
          node->predicate == nullptr) {
        out_rows = left_rows * right_rows;
      } else {
        out_rows = std::max(
            left_rows * right_rows * params_.default_join_selectivity,
            std::max(left_rows, right_rows) * 0.1);
      }
      if (node->join_type == sql::JoinType::kLeft) {
        out_rows = std::max(out_rows, left_rows);
      } else if (node->join_type == sql::JoinType::kRight) {
        out_rows = std::max(out_rows, right_rows);
      } else if (node->join_type == sql::JoinType::kFull) {
        out_rows = std::max(out_rows, left_rows + right_rows);
      }
      out_rows = std::min(out_rows, params_.max_intermediate_rows);
      // Hash join: build on the smaller side, probe with the larger.
      const double build = std::min(left_rows, right_rows);
      const double probe = std::max(left_rows, right_rows);
      *cost_units += build * params_.join_build_cost_per_row +
                     probe * params_.join_probe_cost_per_row;
      *peak_rows = std::max(*peak_rows, build + out_rows * 0.01);
      node->cardinality = out_rows;
      return out_rows;
    }
    case PlanNodeType::kAggregate: {
      PRESTROID_ASSIGN_OR_RETURN(
          double in_rows,
          Annotate(node->children[0].get(), cost_units, peak_rows, input_bytes));
      *cost_units += in_rows * params_.aggregate_cost_per_row;
      // Group count grows sub-linearly with input (power-law heuristic);
      // a global aggregate (no keys) emits one row.
      node->cardinality = node->group_keys.empty()
                              ? 1.0
                              : std::max(1.0, std::pow(in_rows, 0.75));
      *peak_rows = std::max(*peak_rows, node->cardinality);
      return node->cardinality;
    }
    case PlanNodeType::kSort: {
      PRESTROID_ASSIGN_OR_RETURN(
          double in_rows,
          Annotate(node->children[0].get(), cost_units, peak_rows, input_bytes));
      *cost_units += in_rows * std::log2(std::max(2.0, in_rows)) *
                     params_.sort_cost_per_row_log_row;
      *peak_rows = std::max(*peak_rows, in_rows);
      node->cardinality = in_rows;
      return in_rows;
    }
    case PlanNodeType::kLimit: {
      PRESTROID_ASSIGN_OR_RETURN(
          double in_rows,
          Annotate(node->children[0].get(), cost_units, peak_rows, input_bytes));
      node->cardinality =
          std::min(in_rows, static_cast<double>(std::max<int64_t>(0, node->limit)));
      return node->cardinality;
    }
    case PlanNodeType::kExchange: {
      PRESTROID_ASSIGN_OR_RETURN(
          double in_rows,
          Annotate(node->children[0].get(), cost_units, peak_rows, input_bytes));
      double factor =
          node->exchange_kind == plan::ExchangeKind::kBroadcast ? 4.0 : 1.0;
      *cost_units += in_rows * params_.exchange_cost_per_row * factor;
      node->cardinality = in_rows;
      return in_rows;
    }
    case PlanNodeType::kProject: {
      PRESTROID_ASSIGN_OR_RETURN(
          double in_rows,
          Annotate(node->children[0].get(), cost_units, peak_rows, input_bytes));
      *cost_units += in_rows * params_.project_cost_per_row_expr *
                     static_cast<double>(std::max<size_t>(1, node->expressions.size()));
      node->cardinality = in_rows;
      return in_rows;
    }
    case PlanNodeType::kDistinct: {
      PRESTROID_ASSIGN_OR_RETURN(
          double in_rows,
          Annotate(node->children[0].get(), cost_units, peak_rows, input_bytes));
      *cost_units += in_rows * params_.aggregate_cost_per_row;
      node->cardinality = std::max(1.0, std::pow(in_rows, 0.8));
      *peak_rows = std::max(*peak_rows, node->cardinality);
      return node->cardinality;
    }
  }
  return Status::Internal("unhandled plan node type");
}

Result<double> CostModel::EstimateCpuMinutes(plan::PlanNode* root) const {
  double cost_units = 0.0, peak_rows = 0.0, input_bytes = 0.0;
  PRESTROID_RETURN_NOT_OK(
      Annotate(root, &cost_units, &peak_rows, &input_bytes).status());
  return cost_units / params_.cost_units_per_cpu_minute;
}

Result<ExecutionMetrics> CostModel::Execute(plan::PlanNode* root,
                                            Rng* rng) const {
  PRESTROID_CHECK(rng != nullptr);
  double cost_units = 0.0, peak_rows = 0.0, input_bytes = 0.0;
  PRESTROID_RETURN_NOT_OK(
      Annotate(root, &cost_units, &peak_rows, &input_bytes).status());
  ExecutionMetrics metrics;
  const double noise = rng->LogNormal(0.0, params_.noise_sigma);
  metrics.total_cpu_minutes =
      cost_units / params_.cost_units_per_cpu_minute * noise;
  // Peak memory: retained rows at ~160B each, with its own variance.
  metrics.peak_memory_gb =
      peak_rows * 160.0 / 1e9 * rng->LogNormal(0.0, params_.noise_sigma);
  metrics.input_gb = input_bytes / 1e9;
  return metrics;
}

}  // namespace prestroid::cost
