// Serialization of a fitted PrestroidPipeline (see pipeline.h). Text format:
//
//   PRESTROID_PIPELINE v1
//   <config scalars>
//   conv_channels / dense_units lists
//   transform <log_min> <log_max>
//   <embedded Word2Vec dump>
//   fallback <dim> <floats...>
//   operators <n> (<label> <id>)* ; tables <n> (<name> <id>)*
//   full_max_nodes <n>            (full-tree pipelines only)
//   weights <count> (<name> <numel> <floats...>)*
//
// Labels and tokens never contain whitespace (operator labels are
// "Join:INNER"-style, tables/columns are identifiers), so stream extraction
// round-trips them safely.
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/pipeline.h"
#include "util/logging.h"

namespace prestroid::core {

namespace {

void DumpSizeList(std::ostream& os, const char* tag,
                  const std::vector<size_t>& values) {
  os << tag << " " << values.size();
  for (size_t v : values) os << " " << v;
  os << "\n";
}

Status ReadSizeList(std::istream& is, const char* tag,
                    std::vector<size_t>* out) {
  std::string label;
  size_t count = 0;
  is >> label >> count;
  if (!is.good() || label != tag) {
    return Status::ParseError(std::string("expected list tag ") + tag);
  }
  out->resize(count);
  for (size_t& v : *out) is >> v;
  if (is.fail()) return Status::ParseError("truncated size list");
  return Status::OK();
}

void DumpVocab(std::ostream& os, const char* tag,
               const std::map<std::string, size_t>& vocab) {
  os << tag << " " << vocab.size();
  for (const auto& [label, id] : vocab) os << " " << label << " " << id;
  os << "\n";
}

Status ReadVocab(std::istream& is, const char* tag,
                 std::map<std::string, size_t>* out) {
  std::string label;
  size_t count = 0;
  is >> label >> count;
  if (!is.good() || label != tag) {
    return Status::ParseError(std::string("expected vocab tag ") + tag);
  }
  for (size_t i = 0; i < count; ++i) {
    std::string key;
    size_t id = 0;
    is >> key >> id;
    out->emplace(std::move(key), id);
  }
  if (is.fail()) return Status::ParseError("truncated vocabulary");
  return Status::OK();
}

}  // namespace

Status PrestroidPipeline::SaveFile(const std::string& path) {
  std::ofstream os(path);
  if (!os.is_open()) return Status::IoError("cannot open for write: " + path);
  os.precision(9);

  os << "PRESTROID_PIPELINE v1\n";
  os << "config " << (config_.use_subtrees ? 1 : 0) << " "
     << static_cast<int>(config_.pruning) << " " << config_.num_subtrees << " "
     << config_.sampler.node_limit << " " << config_.sampler.conv_layers << " "
     << config_.word2vec.dim << " " << config_.dropout << " "
     << (config_.batch_norm ? 1 : 0) << " " << config_.learning_rate << " "
     << config_.seed << "\n";
  DumpSizeList(os, "conv_channels", config_.conv_channels);
  DumpSizeList(os, "dense_units", config_.dense_units);
  os << "transform " << transform_.log_min() << " " << transform_.log_max()
     << "\n";
  word2vec_->Serialize(os);
  const std::vector<float>& fallback = predicate_encoder_->global_fallback();
  os << "fallback " << fallback.size();
  for (float v : fallback) os << " " << v;
  os << "\n";
  DumpVocab(os, "operators", encoder_->operator_ids());
  DumpVocab(os, "tables", encoder_->table_ids());
  if (!config_.use_subtrees) {
    os << "full_max_nodes " << full_model_->max_nodes() << "\n";
  }

  auto dump_tensors = [&os](const char* tag, std::vector<ParamRef> refs) {
    os << tag << " " << refs.size() << "\n";
    for (const ParamRef& ref : refs) {
      os << ref.name << " " << ref.value->size();
      for (size_t i = 0; i < ref.value->size(); ++i) {
        os << " " << (*ref.value)[i];
      }
      os << "\n";
    }
  };
  dump_tensors("weights", model()->Params());
  dump_tensors("state", model()->State());
  os.close();
  if (!os.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::unique_ptr<PrestroidPipeline>> PrestroidPipeline::LoadFile(
    const std::string& path) {
  std::ifstream is(path);
  if (!is.is_open()) return Status::IoError("cannot open for read: " + path);

  std::string magic, version;
  is >> magic >> version;
  if (magic != "PRESTROID_PIPELINE" || version != "v1") {
    return Status::ParseError("not a Prestroid pipeline file: " + path);
  }

  auto pipeline = std::unique_ptr<PrestroidPipeline>(new PrestroidPipeline());
  PipelineConfig& config = pipeline->config_;
  std::string tag;
  int use_subtrees = 0, pruning = 0, batch_norm = 0;
  is >> tag >> use_subtrees >> pruning >> config.num_subtrees >>
      config.sampler.node_limit >> config.sampler.conv_layers >>
      config.word2vec.dim >> config.dropout >> batch_norm >>
      config.learning_rate >> config.seed;
  if (!is.good() || tag != "config") {
    return Status::ParseError("bad pipeline config header");
  }
  config.use_subtrees = use_subtrees != 0;
  config.pruning = static_cast<subtree::PruningStrategy>(pruning);
  config.batch_norm = batch_norm != 0;
  PRESTROID_RETURN_NOT_OK(
      ReadSizeList(is, "conv_channels", &config.conv_channels));
  PRESTROID_RETURN_NOT_OK(ReadSizeList(is, "dense_units", &config.dense_units));

  double log_min = 0, log_max = 1;
  is >> tag >> log_min >> log_max;
  if (!is.good() || tag != "transform") {
    return Status::ParseError("bad transform record");
  }
  // Re-fit the transform from its endpoints (log of the stored bounds).
  PRESTROID_RETURN_NOT_OK(
      pipeline->transform_.Fit({std::exp(log_min), std::exp(log_max)}));

  pipeline->word2vec_ = std::make_unique<embed::Word2Vec>();
  PRESTROID_RETURN_NOT_OK(pipeline->word2vec_->Restore(is));

  pipeline->predicate_encoder_ =
      std::make_unique<embed::PredicateEncoder>(pipeline->word2vec_.get());
  size_t fallback_size = 0;
  is >> tag >> fallback_size;
  if (!is.good() || tag != "fallback") {
    return Status::ParseError("bad fallback record");
  }
  std::vector<float> fallback(fallback_size);
  for (float& v : fallback) is >> v;
  pipeline->predicate_encoder_->RestoreGlobalFallback(std::move(fallback));

  pipeline->encoder_ =
      std::make_unique<otp::OtpEncoder>(pipeline->predicate_encoder_.get());
  std::map<std::string, size_t> operators, tables;
  PRESTROID_RETURN_NOT_OK(ReadVocab(is, "operators", &operators));
  PRESTROID_RETURN_NOT_OK(ReadVocab(is, "tables", &tables));
  pipeline->encoder_->RestoreVocabulary(std::move(operators),
                                        std::move(tables));
  pipeline->featurizer_ = std::make_unique<Featurizer>(
      pipeline->encoder_.get(), pipeline->predicate_encoder_.get());

  // Rebuild the model skeleton with the fitted vocabularies' feature width.
  const size_t feature_dim = pipeline->encoder_->feature_dim();
  if (config.use_subtrees) {
    SubtreeModelConfig model_config;
    model_config.feature_dim = feature_dim;
    model_config.node_limit = config.sampler.node_limit;
    model_config.num_subtrees = config.num_subtrees;
    model_config.conv_channels = config.conv_channels;
    model_config.dense_units = config.dense_units;
    model_config.dropout = config.dropout;
    model_config.batch_norm = config.batch_norm;
    model_config.learning_rate = config.learning_rate;
    model_config.seed = config.seed;
    pipeline->subtree_model_ = std::make_unique<SubtreeModel>(model_config);
  } else {
    size_t max_nodes = 0;
    is >> tag >> max_nodes;
    if (!is.good() || tag != "full_max_nodes") {
      return Status::ParseError("bad full_max_nodes record");
    }
    FullTreeModelConfig model_config;
    model_config.feature_dim = feature_dim;
    model_config.conv_channels = config.conv_channels;
    model_config.dense_units = config.dense_units;
    model_config.dropout = config.dropout;
    model_config.batch_norm = config.batch_norm;
    model_config.learning_rate = config.learning_rate;
    model_config.seed = config.seed;
    pipeline->full_model_ = std::make_unique<FullTreeModel>(model_config);
    pipeline->full_model_->FinalizeEmpty(max_nodes);
  }

  // Restore the trained weights (and non-trainable buffers) into the
  // freshly built tensors.
  auto read_tensors = [&is](const char* expected_tag,
                            std::vector<ParamRef> refs) -> Status {
    std::string header;
    size_t count = 0;
    is >> header >> count;
    if (!is.good() || header != expected_tag) {
      return Status::ParseError(std::string("bad tensor section ") +
                                expected_tag);
    }
    if (refs.size() != count) {
      return Status::ParseError(
          "tensor count mismatch: file does not match the rebuilt "
          "architecture");
    }
    for (ParamRef& ref : refs) {
      std::string name;
      size_t numel = 0;
      is >> name >> numel;
      if (!is.good() || numel != ref.value->size()) {
        return Status::ParseError("tensor shape mismatch for " + ref.name);
      }
      for (size_t i = 0; i < numel; ++i) is >> (*ref.value)[i];
    }
    if (is.fail()) return Status::ParseError("truncated tensor section");
    return Status::OK();
  };
  PRESTROID_RETURN_NOT_OK(read_tensors("weights", pipeline->model()->Params()));
  PRESTROID_RETURN_NOT_OK(read_tensors("state", pipeline->model()->State()));
  return pipeline;
}

}  // namespace prestroid::core
