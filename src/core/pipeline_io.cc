// Serialization of a fitted PrestroidPipeline (see pipeline.h).
//
// On-disk layout (v2) is the crash-safe artifact container of
// util/artifact_io.h — magic + version header, three CRC32-checksummed
// sections, atomic temp-file + fsync + rename publication:
//
//   meta   — config scalars, conv/dense size lists, label transform,
//            full-tree padding size
//   embed  — embedded Word2Vec dump, OOV fallback vector, operator and
//            table vocabularies
//   model  — trained weights + non-trainable state tensors
//
// Section payloads are the v1 text records (labels and tokens never contain
// whitespace, so stream extraction round-trips them safely). Files written
// by the pre-container v1 format ("PRESTROID_PIPELINE v1" + the same records
// in sequence) are still loadable; any corrupted v2 file is rejected with
// StatusCode::kDataCorruption before a single weight is deserialized.
#include <cmath>
#include <sstream>

#include "core/pipeline.h"
#include "core/quant_profile.h"
#include "util/artifact_io.h"
#include "util/logging.h"

namespace prestroid::core {

namespace {

constexpr char kLegacyMagic[] = "PRESTROID_PIPELINE";
constexpr char kV2Magic[] = "PRESTROID_ARTIFACT";

void DumpSizeList(std::ostream& os, const char* tag,
                  const std::vector<size_t>& values) {
  os << tag << " " << values.size();
  for (size_t v : values) os << " " << v;
  os << "\n";
}

// The legacy v1 body has no CRC, so counts read from it are attacker-ish
// input: a corrupted count must not drive an allocation or a spin loop.
// No real list or vocabulary comes anywhere near this bound.
constexpr size_t kMaxSerializedEntries = 1u << 24;

Status ReadSizeList(std::istream& is, const char* tag,
                    std::vector<size_t>* out) {
  std::string label;
  size_t count = 0;
  is >> label >> count;
  if (!is.good() || label != tag) {
    return Status::ParseError(std::string("expected list tag ") + tag);
  }
  if (count > kMaxSerializedEntries) {
    return Status::DataCorruption(std::string("implausible length for list ") +
                                  tag);
  }
  out->resize(count);
  for (size_t& v : *out) is >> v;
  if (is.fail()) return Status::ParseError("truncated size list");
  return Status::OK();
}

void DumpVocab(std::ostream& os, const char* tag,
               const std::map<std::string, size_t>& vocab) {
  os << tag << " " << vocab.size();
  for (const auto& [label, id] : vocab) os << " " << label << " " << id;
  os << "\n";
}

Status ReadVocab(std::istream& is, const char* tag,
                 std::map<std::string, size_t>* out) {
  std::string label;
  size_t count = 0;
  is >> label >> count;
  if (!is.good() || label != tag) {
    return Status::ParseError(std::string("expected vocab tag ") + tag);
  }
  if (count > kMaxSerializedEntries) {
    return Status::DataCorruption(std::string("implausible size for vocab ") +
                                  tag);
  }
  for (size_t i = 0; i < count; ++i) {
    std::string key;
    size_t id = 0;
    is >> key >> id;
    // Fail per entry: a truncated stream must end the loop, not spin `count`
    // times inserting empty keys.
    if (is.fail()) return Status::ParseError("truncated vocabulary");
    out->emplace(std::move(key), id);
  }
  return Status::OK();
}

}  // namespace

/// Friend of PrestroidPipeline: stateless dump/parse helpers shared between
/// the v2 container writer/reader and the legacy v1 reader.
struct PipelineSerde {
  static void DumpConfig(const PrestroidPipeline& p, std::ostream& os) {
    const PipelineConfig& config = p.config_;
    os << "config " << (config.use_subtrees ? 1 : 0) << " "
       << static_cast<int>(config.pruning) << " " << config.num_subtrees << " "
       << config.sampler.node_limit << " " << config.sampler.conv_layers << " "
       << config.word2vec.dim << " " << config.dropout << " "
       << (config.batch_norm ? 1 : 0) << " " << config.learning_rate << " "
       << config.seed << "\n";
    DumpSizeList(os, "conv_channels", config.conv_channels);
    DumpSizeList(os, "dense_units", config.dense_units);
    os << "transform " << p.transform_.log_min() << " "
       << p.transform_.log_max() << "\n";
  }

  static Status ParseConfig(std::istream& is, PrestroidPipeline* p) {
    PipelineConfig& config = p->config_;
    std::string tag;
    int use_subtrees = 0, pruning = 0, batch_norm = 0;
    is >> tag >> use_subtrees >> pruning >> config.num_subtrees >>
        config.sampler.node_limit >> config.sampler.conv_layers >>
        config.word2vec.dim >> config.dropout >> batch_norm >>
        config.learning_rate >> config.seed;
    if (!is.good() || tag != "config") {
      return Status::ParseError("bad pipeline config header");
    }
    config.use_subtrees = use_subtrees != 0;
    config.pruning = static_cast<subtree::PruningStrategy>(pruning);
    config.batch_norm = batch_norm != 0;
    PRESTROID_RETURN_NOT_OK(
        ReadSizeList(is, "conv_channels", &config.conv_channels));
    PRESTROID_RETURN_NOT_OK(
        ReadSizeList(is, "dense_units", &config.dense_units));

    double log_min = 0, log_max = 1;
    is >> tag >> log_min >> log_max;
    if (!is.good() || tag != "transform") {
      return Status::ParseError("bad transform record");
    }
    // Re-fit the transform from its endpoints (log of the stored bounds).
    return p->transform_.Fit({std::exp(log_min), std::exp(log_max)});
  }

  static void DumpEmbeddings(const PrestroidPipeline& p, std::ostream& os) {
    p.word2vec_->Serialize(os);
    const std::vector<float>& fallback = p.predicate_encoder_->global_fallback();
    os << "fallback " << fallback.size();
    for (float v : fallback) os << " " << v;
    os << "\n";
    DumpVocab(os, "operators", p.encoder_->operator_ids());
    DumpVocab(os, "tables", p.encoder_->table_ids());
  }

  static Status ParseEmbeddings(std::istream& is, PrestroidPipeline* p) {
    p->word2vec_ = std::make_unique<embed::Word2Vec>();
    PRESTROID_RETURN_NOT_OK(p->word2vec_->Restore(is));

    p->predicate_encoder_ =
        std::make_unique<embed::PredicateEncoder>(p->word2vec_.get());
    std::string tag;
    size_t fallback_size = 0;
    is >> tag >> fallback_size;
    if (!is.good() || tag != "fallback") {
      return Status::ParseError("bad fallback record");
    }
    std::vector<float> fallback(fallback_size);
    for (float& v : fallback) is >> v;
    p->predicate_encoder_->RestoreGlobalFallback(std::move(fallback));

    p->encoder_ =
        std::make_unique<otp::OtpEncoder>(p->predicate_encoder_.get());
    std::map<std::string, size_t> operators, tables;
    PRESTROID_RETURN_NOT_OK(ReadVocab(is, "operators", &operators));
    PRESTROID_RETURN_NOT_OK(ReadVocab(is, "tables", &tables));
    p->encoder_->RestoreVocabulary(std::move(operators), std::move(tables));
    p->featurizer_ = std::make_unique<Featurizer>(
        p->encoder_.get(), p->predicate_encoder_.get());
    return Status::OK();
  }

  /// Rebuilds the model skeleton with the fitted vocabularies' feature
  /// width; `full_max_nodes` is the stored padding size (full-tree only).
  static Status BuildModelSkeleton(PrestroidPipeline* p,
                                   size_t full_max_nodes) {
    const PipelineConfig& config = p->config_;
    const size_t feature_dim = p->encoder_->feature_dim();
    if (config.use_subtrees) {
      SubtreeModelConfig model_config;
      model_config.feature_dim = feature_dim;
      model_config.node_limit = config.sampler.node_limit;
      model_config.num_subtrees = config.num_subtrees;
      model_config.conv_channels = config.conv_channels;
      model_config.dense_units = config.dense_units;
      model_config.dropout = config.dropout;
      model_config.batch_norm = config.batch_norm;
      model_config.learning_rate = config.learning_rate;
      model_config.seed = config.seed;
      p->subtree_model_ = std::make_unique<SubtreeModel>(model_config);
    } else {
      FullTreeModelConfig model_config;
      model_config.feature_dim = feature_dim;
      model_config.conv_channels = config.conv_channels;
      model_config.dense_units = config.dense_units;
      model_config.dropout = config.dropout;
      model_config.batch_norm = config.batch_norm;
      model_config.learning_rate = config.learning_rate;
      model_config.seed = config.seed;
      p->full_model_ = std::make_unique<FullTreeModel>(model_config);
      p->full_model_->FinalizeEmpty(full_max_nodes);
    }
    // Serving default: loaded pipelines run single-threaded. The `threads`
    // knob is runtime-only and never serialized, so config_.threads == 1.
    p->exec_ctx_ = std::make_unique<ExecutionContext>(1);
    p->model()->SetExecutionContext(p->exec_ctx_.get());
    return Status::OK();
  }

  static void DumpModel(PrestroidPipeline& p, std::ostream& os) {
    auto dump_tensors = [&os](const char* tag, std::vector<ParamRef> refs) {
      os << tag << " " << refs.size() << "\n";
      for (const ParamRef& ref : refs) {
        os << ref.name << " " << ref.value->size();
        for (size_t i = 0; i < ref.value->size(); ++i) {
          os << " " << (*ref.value)[i];
        }
        os << "\n";
      }
    };
    dump_tensors("weights", p.model()->Params());
    dump_tensors("state", p.model()->State());
  }

  /// Restores the trained weights (and non-trainable buffers) into the
  /// freshly built tensors.
  static Status ParseModel(std::istream& is, PrestroidPipeline* p) {
    auto read_tensors = [&is](const char* expected_tag,
                              std::vector<ParamRef> refs) -> Status {
      std::string header;
      size_t count = 0;
      is >> header >> count;
      if (!is.good() || header != expected_tag) {
        return Status::ParseError(std::string("bad tensor section ") +
                                  expected_tag);
      }
      if (refs.size() != count) {
        return Status::ParseError(
            "tensor count mismatch: file does not match the rebuilt "
            "architecture");
      }
      for (ParamRef& ref : refs) {
        std::string name;
        size_t numel = 0;
        is >> name >> numel;
        if (!is.good() || numel != ref.value->size()) {
          return Status::ParseError("tensor shape mismatch for " + ref.name);
        }
        for (size_t i = 0; i < numel; ++i) is >> (*ref.value)[i];
      }
      if (is.fail()) return Status::ParseError("truncated tensor section");
      return Status::OK();
    };
    PRESTROID_RETURN_NOT_OK(read_tensors("weights", p->model()->Params()));
    return read_tensors("state", p->model()->State());
  }

  static Status ReadFullMaxNodes(std::istream& is, size_t* out) {
    std::string tag;
    is >> tag >> *out;
    if (!is.good() || tag != "full_max_nodes") {
      return Status::ParseError("bad full_max_nodes record");
    }
    return Status::OK();
  }

  /// Reads the pre-container v1 body (magic line already consumed). Kept so
  /// artifacts written before the crash-safe format remain loadable.
  static Result<std::unique_ptr<PrestroidPipeline>> ParseLegacyV1(
      std::istream& is) {
    auto pipeline = std::unique_ptr<PrestroidPipeline>(new PrestroidPipeline());
    PRESTROID_RETURN_NOT_OK(ParseConfig(is, pipeline.get()));
    PRESTROID_RETURN_NOT_OK(ParseEmbeddings(is, pipeline.get()));
    size_t full_max_nodes = 0;
    if (!pipeline->config_.use_subtrees) {
      PRESTROID_RETURN_NOT_OK(ReadFullMaxNodes(is, &full_max_nodes));
    }
    PRESTROID_RETURN_NOT_OK(BuildModelSkeleton(pipeline.get(), full_max_nodes));
    PRESTROID_RETURN_NOT_OK(ParseModel(is, pipeline.get()));
    return pipeline;
  }
};

Status PrestroidPipeline::SaveFile(const std::string& path) {
  std::ostringstream meta, embed, model_section;
  meta.precision(9);
  embed.precision(9);
  model_section.precision(9);

  PipelineSerde::DumpConfig(*this, meta);
  if (!config_.use_subtrees) {
    meta << "full_max_nodes " << full_model_->max_nodes() << "\n";
  }
  PipelineSerde::DumpEmbeddings(*this, embed);
  PipelineSerde::DumpModel(*this, model_section);

  return WriteArtifactFile(path, {{"meta", meta.str()},
                                  {"embed", embed.str()},
                                  {"model", model_section.str()}});
}

Result<std::unique_ptr<PrestroidPipeline>> PrestroidPipeline::LoadFile(
    const std::string& path) {
  PRESTROID_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));

  if (bytes.rfind(kLegacyMagic, 0) == 0) {
    std::istringstream is(bytes);
    std::string magic, version;
    is >> magic >> version;
    if (version != "v1") {
      return Status::DataCorruption("unsupported legacy pipeline version: " +
                                    version);
    }
    return PipelineSerde::ParseLegacyV1(is);
  }
  if (bytes.rfind(kV2Magic, 0) != 0) {
    return Status::DataCorruption("not a Prestroid pipeline artifact: " + path);
  }

  // v2 container: every section is CRC-validated before any parsing, so a
  // truncated or bit-flipped file is rejected here with kDataCorruption and
  // never reaches the weight deserializer.
  PRESTROID_ASSIGN_OR_RETURN(std::vector<ArtifactSection> sections,
                             DecodeArtifact(bytes));
  PRESTROID_ASSIGN_OR_RETURN(const ArtifactSection* meta,
                             FindSection(sections, "meta"));
  PRESTROID_ASSIGN_OR_RETURN(const ArtifactSection* embed,
                             FindSection(sections, "embed"));
  PRESTROID_ASSIGN_OR_RETURN(const ArtifactSection* model_section,
                             FindSection(sections, "model"));

  auto pipeline = std::unique_ptr<PrestroidPipeline>(new PrestroidPipeline());
  std::istringstream meta_is(meta->payload);
  PRESTROID_RETURN_NOT_OK(PipelineSerde::ParseConfig(meta_is, pipeline.get()));
  size_t full_max_nodes = 0;
  if (!pipeline->config_.use_subtrees) {
    PRESTROID_RETURN_NOT_OK(
        PipelineSerde::ReadFullMaxNodes(meta_is, &full_max_nodes));
  }
  std::istringstream embed_is(embed->payload);
  PRESTROID_RETURN_NOT_OK(
      PipelineSerde::ParseEmbeddings(embed_is, pipeline.get()));
  PRESTROID_RETURN_NOT_OK(
      PipelineSerde::BuildModelSkeleton(pipeline.get(), full_max_nodes));
  std::istringstream model_is(model_section->payload);
  PRESTROID_RETURN_NOT_OK(PipelineSerde::ParseModel(model_is, pipeline.get()));
  return pipeline;
}

// --- Quantization profile (core/quant_profile.h) ---------------------------
//
// Its own artifact file rather than a section of the model container: the
// profile is regenerated by recalibration without retraining, and a damaged
// profile must degrade serving to fp32 while the model itself keeps loading.
// The payload is versioned text inside a CRC-validated "qprof" section.

namespace {

/// Quantizable-layer count bound: a corrupted count must not drive an
/// allocation. Real models have a handful of conv + dense layers.
constexpr size_t kMaxProfileLayers = 4096;

}  // namespace

Status SaveQuantizationProfile(const std::string& path,
                               const QuantizationProfile& profile) {
  std::ostringstream os;
  os.precision(9);
  os << "qprof_version 1\n";
  os << "clip_percentile " << profile.clip_percentile << "\n";
  os << "samples " << profile.samples << "\n";
  os << "layers " << profile.layers.size() << "\n";
  for (const QuantLayerProfile& layer : profile.layers) {
    os << "layer " << layer.act_scale << " " << layer.act_min << " "
       << layer.act_max << "\n";
  }
  return WriteArtifactFile(path, {{"qprof", os.str()}});
}

Result<QuantizationProfile> LoadQuantizationProfile(const std::string& path) {
  PRESTROID_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  if (bytes.rfind(kV2Magic, 0) != 0) {
    return Status::DataCorruption("not a quantization-profile artifact: " +
                                  path);
  }
  PRESTROID_ASSIGN_OR_RETURN(std::vector<ArtifactSection> sections,
                             DecodeArtifact(bytes));
  PRESTROID_ASSIGN_OR_RETURN(const ArtifactSection* qprof,
                             FindSection(sections, "qprof"));
  std::istringstream is(qprof->payload);
  std::string tag;
  size_t version = 0;
  is >> tag >> version;
  if (!is.good() || tag != "qprof_version") {
    return Status::ParseError("missing qprof_version header");
  }
  if (version != 1) {
    return Status::DataCorruption("unsupported quantization-profile version");
  }
  QuantizationProfile profile;
  size_t layer_count = 0;
  is >> tag >> profile.clip_percentile;
  if (is.fail() || tag != "clip_percentile") {
    return Status::ParseError("expected clip_percentile");
  }
  is >> tag >> profile.samples;
  if (is.fail() || tag != "samples") {
    return Status::ParseError("expected samples");
  }
  is >> tag >> layer_count;
  if (is.fail() || tag != "layers") {
    return Status::ParseError("expected layers");
  }
  if (layer_count > kMaxProfileLayers) {
    return Status::DataCorruption("implausible quantization-profile layer count");
  }
  profile.layers.resize(layer_count);
  for (QuantLayerProfile& layer : profile.layers) {
    is >> tag >> layer.act_scale >> layer.act_min >> layer.act_max;
    if (is.fail() || tag != "layer") {
      return Status::ParseError("truncated quantization-profile layer");
    }
    if (!std::isfinite(layer.act_scale) || layer.act_scale < 0.0f) {
      return Status::DataCorruption(
          "quantization-profile activation scale out of range");
    }
  }
  return profile;
}

}  // namespace prestroid::core
