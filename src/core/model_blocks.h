#ifndef PRESTROID_CORE_MODEL_BLOCKS_H_
#define PRESTROID_CORE_MODEL_BLOCKS_H_

#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/batch_norm.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/layer.h"
#include "nn/tree_conv.h"

namespace prestroid::core {

/// Stack of tree-convolution layers with ReLU between them — the shared
/// convolution trunk of the Prestroid sub-tree and full-tree models
/// (3 x 512 kernels for Grab-Traces, 3 x 128 for TPC-DS; Section 5.2).
///
/// Forward/Backward return references into the last layer's workspace (see
/// Layer); intermediate activations flow between layers by reference with no
/// copies.
class TreeConvStack {
 public:
  TreeConvStack(size_t input_dim, const std::vector<size_t>& channels,
                Rng* rng);

  TreeConvStack(const TreeConvStack&) = delete;
  TreeConvStack& operator=(const TreeConvStack&) = delete;

  /// [batch, nodes, input_dim] -> [batch, nodes, channels.back()].
  const Tensor& Forward(const Tensor& features, const TreeStructure& structure);
  const Tensor& Backward(const Tensor& grad_output);

  /// Binds the execution context on every layer of the stack.
  void BindContext(ExecutionContext* ctx);

  std::vector<ParamRef> Params();
  size_t NumParameters();
  size_t output_dim() const { return output_dim_; }
  size_t num_layers() const { return convs_.size(); }

  /// Appends the stack's quantizable layers (every TreeConvLayer) in forward
  /// order (see CostModel::CollectQuantLayers).
  void CollectQuantLayers(std::vector<QuantizableLayer*>* out);

 private:
  size_t output_dim_;
  std::vector<std::unique_ptr<TreeConvLayer>> convs_;
  std::vector<std::unique_ptr<ReluLayer>> relus_;
};

/// Configuration of the dense regression head.
struct DenseHeadConfig {
  size_t input_dim = 0;
  /// Hidden widths; the paper uses {128, 64} (Grab) / {32, 8} (TPC-DS).
  std::vector<size_t> hidden = {128, 64};
  float dropout = 0.1f;
  bool batch_norm = true;
  /// Output units. 1 for the paper's single-objective (total CPU time);
  /// the multi-objective extension predicts several normalized profiler
  /// metrics at once (CPU, peak memory, input bytes).
  size_t outputs = 1;
};

/// Dense layers with ReLU (+ optional batch-norm and dropout) ending in a
/// single sigmoid unit, matching the paper's prediction head.
class DenseHead {
 public:
  DenseHead(const DenseHeadConfig& config, Rng* rng);

  DenseHead(const DenseHead&) = delete;
  DenseHead& operator=(const DenseHead&) = delete;

  /// [batch, input_dim] -> [batch, outputs], each in (0, 1).
  const Tensor& Forward(const Tensor& input);
  const Tensor& Backward(const Tensor& grad_output);
  void SetTraining(bool training);

  /// Binds the execution context on every layer of the head.
  void BindContext(ExecutionContext* ctx);

  std::vector<ParamRef> Params();
  /// Non-trainable buffers (batch-norm running statistics).
  std::vector<ParamRef> State();
  size_t NumParameters();

  /// Appends the head's quantizable layers (every Dense) in forward order
  /// (see CostModel::CollectQuantLayers).
  void CollectQuantLayers(std::vector<QuantizableLayer*>* out);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace prestroid::core

#endif  // PRESTROID_CORE_MODEL_BLOCKS_H_
