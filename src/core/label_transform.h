#ifndef PRESTROID_CORE_LABEL_TRANSFORM_H_
#define PRESTROID_CORE_LABEL_TRANSFORM_H_

#include <vector>

#include "util/status.h"

namespace prestroid::core {

/// The paper's label pipeline: log transformation followed by min-max
/// normalization, constraining all training values into [0, 1] (which is why
/// every model ends in a sigmoid unit).
class LabelTransform {
 public:
  /// Fits the min/max of log(cpu_minutes) over the corpus. Values must be
  /// positive.
  Status Fit(const std::vector<double>& cpu_minutes);

  bool fitted() const { return fitted_; }

  /// minutes -> [0, 1] (clamped for out-of-range inference-time values).
  float Normalize(double cpu_minutes) const;
  /// [0, 1] -> minutes.
  double Denormalize(float normalized) const;

  std::vector<float> NormalizeAll(const std::vector<double>& cpu_minutes) const;

  double log_min() const { return log_min_; }
  double log_max() const { return log_max_; }

 private:
  bool fitted_ = false;
  double log_min_ = 0.0;
  double log_max_ = 1.0;
};

}  // namespace prestroid::core

#endif  // PRESTROID_CORE_LABEL_TRANSFORM_H_
