#ifndef PRESTROID_CORE_SUBTREE_MODEL_H_
#define PRESTROID_CORE_SUBTREE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/featurizer.h"
#include "core/model_blocks.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace prestroid::core {

/// Hyper-parameters of the Prestroid sub-tree model (paper notation
/// N-K-P_f). The P_f dimension is implied by `feature_dim` (the encoder's
/// node width already includes the P_f-wide predicate block).
struct SubtreeModelConfig {
  size_t feature_dim = 0;   // node-feature width F
  size_t node_limit = 15;   // N: max nodes per sub-tree
  size_t num_subtrees = 9;  // K: sub-trees per query
  std::vector<size_t> conv_channels = {512, 512, 512};
  std::vector<size_t> dense_units = {128, 64};
  float dropout = 0.1f;
  bool batch_norm = true;
  float learning_rate = 1e-4f;
  float huber_delta = 1.0f;
  /// Number of regression targets. 1 = the paper's total-CPU-time objective;
  /// >1 enables the multi-objective extension (e.g. {CPU, peak memory,
  /// input bytes}), all trained jointly under one Huber loss.
  size_t output_dim = 1;
  uint64_t seed = 1;
  std::string name = "Prestroid";
};

/// The paper's core contribution: per-query K sub-trees of <= N nodes run
/// through a shared tree-convolution trunk, vote-masked dynamic pooling per
/// sub-tree, flattened across sub-trees, then a dense sigmoid head.
class SubtreeModel : public CostModel {
 public:
  explicit SubtreeModel(const SubtreeModelConfig& config);

  /// Adds one featurized sample (the first K sub-trees from the Featurizer;
  /// fewer are zero-padded) with its normalized target (output_dim must
  /// be 1).
  void AddSample(std::vector<TreeFeatures> subtrees, float target);

  /// Multi-objective variant: `targets` holds output_dim normalized values.
  void AddSampleMulti(std::vector<TreeFeatures> subtrees,
                      const std::vector<float>& targets);

  /// Predicts all output_dim objectives: [indices.size(), output_dim].
  Tensor PredictMulti(const std::vector<size_t>& indices);

  /// Fused eval-mode forward over borrowed samples — each element is one
  /// query's sub-tree set, read in place with no staging copies and no
  /// mutation of the training-sample store. Returns the first objective per
  /// sample; results are identical to staging + Predict() (eval mode is
  /// per-row independent). This is the batched-serving hot path.
  std::vector<float> PredictBorrowed(
      const std::vector<const std::vector<TreeFeatures>*>& samples);

  /// Removes the most recently added sample (used to stage transient
  /// inference-only samples).
  void PopSample();

  // CostModel:
  std::string name() const override { return config_.name; }
  size_t num_samples() const override { return samples_.size(); }
  double TrainEpoch(const std::vector<size_t>& indices,
                    size_t batch_size) override;
  std::vector<float> Predict(const std::vector<size_t>& indices) override;
  size_t NumParameters() const override;
  std::vector<ParamRef> Params() override { return optimizer_->params(); }
  std::vector<ParamRef> State() override { return head_->State(); }
  void ScaleLearningRate(float factor) override {
    optimizer_->set_lr(optimizer_->lr() * factor);
  }
  void SerializeOptimizerState(std::ostream& os) const override {
    optimizer_->SerializeState(os);
  }
  Status DeserializeOptimizerState(std::istream& is) override {
    return optimizer_->DeserializeState(is);
  }
  /// Binds `ctx` on every layer of the trunk, pooling and head.
  void SetExecutionContext(ExecutionContext* ctx) override;
  ExecutionContext* execution_context() override { return ctx_; }
  void CollectQuantLayers(std::vector<QuantizableLayer*>* out) override {
    conv_->CollectQuantLayers(out);
    head_->CollectQuantLayers(out);
  }

  /// Exact bytes of the padded input tensor for one batch (Figure 6 top):
  /// batch * K * N * F * sizeof(float).
  size_t InputBytesPerBatch(size_t batch_size) const;

  const SubtreeModelConfig& config() const { return config_; }
  const std::vector<float>& targets() const { return targets_; }

 private:
  /// Assembles the padded [B*K, N, F] batch and its structure into the given
  /// workspace tensor (allocation-free once warm).
  void AssembleBatch(const std::vector<size_t>& batch, TreeStructure* structure,
                     Tensor* features) const;
  /// AssembleBatch over borrowed sub-tree sets instead of stored samples.
  void AssembleBorrowed(
      const std::vector<const std::vector<TreeFeatures>*>& samples,
      size_t start, size_t end, TreeStructure* structure,
      Tensor* features) const;
  const Tensor& ForwardBatch(const Tensor& features,
                             const TreeStructure& structure);

  SubtreeModelConfig config_;
  Rng rng_;
  std::unique_ptr<TreeConvStack> conv_;
  MaskedDynamicPooling pooling_;
  std::unique_ptr<DenseHead> head_;
  std::unique_ptr<AdamOptimizer> optimizer_;
  HuberLoss loss_;
  ExecutionContext* ctx_ = nullptr;

  std::vector<std::vector<TreeFeatures>> samples_;
  std::vector<float> targets_;
  // Per-batch workspaces reused across batches.
  Tensor features_ws_;     // [B*K, N, F]
  Tensor target_ws_;       // [B, output_dim]
  Tensor grad_ws_;         // [B, output_dim]
  Tensor grad_pooled_ws_;  // [B*K, C]
};

}  // namespace prestroid::core

#endif  // PRESTROID_CORE_SUBTREE_MODEL_H_
