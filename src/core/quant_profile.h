#ifndef PRESTROID_CORE_QUANT_PROFILE_H_
#define PRESTROID_CORE_QUANT_PROFILE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace prestroid::core {

/// Calibrated activation statistics for one quantizable layer, in the order
/// CostModel::CollectQuantLayers yields (conv trunk, then dense head).
struct QuantLayerProfile {
  float act_scale = 0.0f;  // per-tensor symmetric int8 scale (clip / 127)
  float act_min = 0.0f;    // observed range, kept for auditability
  float act_max = 0.0f;
};

/// A model's int8 quantization profile: the output of one calibration pass
/// (PrestroidPipeline::CalibrateQuantization) over a trace sample. Stored as
/// its own versioned artifact next to the model (QuantProfilePathFor), CRC'd
/// by the v2 container, so a serving process can apply --precision int8 with
/// calibrated scales instead of dynamic per-batch absmax.
struct QuantizationProfile {
  double clip_percentile = 99.0;  // row-absmax percentile used for the clip
  size_t samples = 0;             // calibration sample count (plans)
  std::vector<QuantLayerProfile> layers;
};

/// Conventional sibling path of a model artifact's profile:
/// "<model_path>.qprof".
inline std::string QuantProfilePathFor(const std::string& model_path) {
  return model_path + ".qprof";
}

/// Serializes `profile` atomically to `path` in the v2 artifact container
/// (CRC-validated section "qprof"). Implemented in core/pipeline_io.cc.
Status SaveQuantizationProfile(const std::string& path,
                               const QuantizationProfile& profile);

/// Loads a profile written by SaveQuantizationProfile. kDataCorruption when
/// the container CRC or the payload fails validation — callers must then
/// serve fp32, never crash (the degradation-chain contract; DESIGN.md §5.8).
Result<QuantizationProfile> LoadQuantizationProfile(const std::string& path);

}  // namespace prestroid::core

#endif  // PRESTROID_CORE_QUANT_PROFILE_H_
