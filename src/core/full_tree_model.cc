#include "core/full_tree_model.h"

#include <cstring>

#include "util/logging.h"

namespace prestroid::core {

FullTreeModel::FullTreeModel(const FullTreeModelConfig& config)
    : config_(config), rng_(config.seed), loss_(config.huber_delta) {
  PRESTROID_CHECK_GT(config_.feature_dim, 0u);
  conv_ = std::make_unique<TreeConvStack>(config_.feature_dim,
                                          config_.conv_channels, &rng_);
  DenseHeadConfig head_config;
  head_config.input_dim = conv_->output_dim();
  head_config.hidden = config_.dense_units;
  head_config.dropout = config_.dropout;
  head_config.batch_norm = config_.batch_norm;
  head_ = std::make_unique<DenseHead>(head_config, &rng_);
  optimizer_ = std::make_unique<AdamOptimizer>(config_.learning_rate);
  optimizer_->Register(conv_->Params());
  optimizer_->Register(head_->Params());
}

void FullTreeModel::AddSample(TreeFeatures tree, float target) {
  PRESTROID_CHECK(!finalized_);
  PRESTROID_CHECK_EQ(tree.features.dim(1), config_.feature_dim);
  max_nodes_ = std::max(max_nodes_, tree.num_nodes());
  samples_.push_back(std::move(tree));
  targets_.push_back(target);
}

void FullTreeModel::Finalize() {
  PRESTROID_CHECK(!samples_.empty());
  finalized_ = true;
}

void FullTreeModel::StageSample(TreeFeatures tree) {
  PRESTROID_CHECK(finalized_);
  PRESTROID_CHECK_EQ(tree.features.dim(1), config_.feature_dim);
  samples_.push_back(std::move(tree));
  targets_.push_back(0.0f);
}

void FullTreeModel::PopSample() {
  PRESTROID_CHECK(!samples_.empty());
  samples_.pop_back();
  targets_.pop_back();
}

void FullTreeModel::SetExecutionContext(ExecutionContext* ctx) {
  ctx_ = ctx;
  conv_->BindContext(ctx);
  pooling_.set_context(ctx);
  head_->BindContext(ctx);
}

void FullTreeModel::AssembleBatch(const std::vector<size_t>& batch,
                                  TreeStructure* structure,
                                  Tensor* features_out) const {
  PRESTROID_CHECK(finalized_);
  const size_t b = batch.size();
  // The dataset-wide padding size; staged inference samples may exceed it.
  size_t n = max_nodes_;
  for (size_t idx : batch) n = std::max(n, samples_[idx].num_nodes());
  const size_t f = config_.feature_dim;
  Tensor& features = *features_out;
  features.ResetShape({b, n, f});
  features.Fill(0.0f);  // padding slots must stay zero
  structure->left.assign(b, std::vector<int>(n, -1));
  structure->right.assign(b, std::vector<int>(n, -1));
  structure->mask.assign(b, std::vector<float>(n, 0.0f));
  for (size_t i = 0; i < b; ++i) {
    const TreeFeatures& tree = samples_[batch[i]];
    const size_t count = tree.num_nodes();
    std::memcpy(features.data() + i * n * f, tree.features.data(),
                sizeof(float) * count * f);
    for (size_t node = 0; node < count; ++node) {
      structure->left[i][node] = tree.left[node];
      structure->right[i][node] = tree.right[node];
      structure->mask[i][node] = tree.votes[node];
    }
  }
}

void FullTreeModel::AssembleBorrowed(
    const std::vector<const TreeFeatures*>& samples, size_t start, size_t end,
    TreeStructure* structure, Tensor* features_out) const {
  PRESTROID_CHECK(finalized_);
  const size_t b = end - start;
  // The dataset-wide padding size; borrowed inference trees may exceed it.
  size_t n = max_nodes_;
  for (size_t i = start; i < end; ++i) {
    n = std::max(n, samples[i]->num_nodes());
  }
  const size_t f = config_.feature_dim;
  Tensor& features = *features_out;
  features.ResetShape({b, n, f});
  features.Fill(0.0f);  // padding slots must stay zero
  structure->left.assign(b, std::vector<int>(n, -1));
  structure->right.assign(b, std::vector<int>(n, -1));
  structure->mask.assign(b, std::vector<float>(n, 0.0f));
  for (size_t i = 0; i < b; ++i) {
    const TreeFeatures& tree = *samples[start + i];
    PRESTROID_CHECK_EQ(tree.features.dim(1), f);
    const size_t count = tree.num_nodes();
    std::memcpy(features.data() + i * n * f, tree.features.data(),
                sizeof(float) * count * f);
    for (size_t node = 0; node < count; ++node) {
      structure->left[i][node] = tree.left[node];
      structure->right[i][node] = tree.right[node];
      structure->mask[i][node] = tree.votes[node];
    }
  }
}

std::vector<float> FullTreeModel::PredictBorrowed(
    const std::vector<const TreeFeatures*>& samples) {
  PRESTROID_CHECK(finalized_);
  head_->SetTraining(false);
  std::vector<float> out;
  out.reserve(samples.size());
  constexpr size_t kEvalBatch = 32;
  for (size_t start = 0; start < samples.size(); start += kEvalBatch) {
    const size_t end = std::min(samples.size(), start + kEvalBatch);
    TreeStructure structure;
    AssembleBorrowed(samples, start, end, &structure, &features_ws_);
    const Tensor& pred = ForwardBatch(features_ws_, structure);
    for (size_t i = 0; i < end - start; ++i) out.push_back(pred[i]);
  }
  head_->SetTraining(true);
  return out;
}

const Tensor& FullTreeModel::ForwardBatch(const Tensor& features,
                                          const TreeStructure& structure) {
  const Tensor& conv_out = conv_->Forward(features, structure);
  const Tensor& pooled = pooling_.Forward(conv_out, structure);  // [B, C]
  return head_->Forward(pooled);
}

double FullTreeModel::TrainEpoch(const std::vector<size_t>& indices,
                                 size_t batch_size) {
  PRESTROID_CHECK(finalized_);
  PRESTROID_CHECK_GT(batch_size, 0u);
  head_->SetTraining(true);
  double total_loss = 0.0;
  size_t num_batches = 0;
  for (size_t start = 0; start < indices.size(); start += batch_size) {
    const size_t end = std::min(indices.size(), start + batch_size);
    std::vector<size_t> batch(indices.begin() + static_cast<long>(start),
                              indices.begin() + static_cast<long>(end));
    TreeStructure structure;
    AssembleBatch(batch, &structure, &features_ws_);
    const Tensor& pred = ForwardBatch(features_ws_, structure);

    target_ws_.ResetShape({batch.size(), 1});
    for (size_t i = 0; i < batch.size(); ++i) target_ws_[i] = targets_[batch[i]];

    optimizer_->ZeroGrad();
    total_loss += loss_.Compute(pred, target_ws_);
    ++num_batches;

    loss_.GradientInto(&grad_ws_);
    const Tensor& grad_head = head_->Backward(grad_ws_);
    const Tensor& grad_conv = pooling_.Backward(grad_head);
    conv_->Backward(grad_conv);
    optimizer_->Step();
  }
  return num_batches == 0 ? 0.0 : total_loss / static_cast<double>(num_batches);
}

std::vector<float> FullTreeModel::Predict(const std::vector<size_t>& indices) {
  PRESTROID_CHECK(finalized_);
  head_->SetTraining(false);
  std::vector<float> out;
  out.reserve(indices.size());
  constexpr size_t kEvalBatch = 32;
  for (size_t start = 0; start < indices.size(); start += kEvalBatch) {
    const size_t end = std::min(indices.size(), start + kEvalBatch);
    std::vector<size_t> batch(indices.begin() + static_cast<long>(start),
                              indices.begin() + static_cast<long>(end));
    TreeStructure structure;
    AssembleBatch(batch, &structure, &features_ws_);
    const Tensor& pred = ForwardBatch(features_ws_, structure);
    for (size_t i = 0; i < batch.size(); ++i) out.push_back(pred[i]);
  }
  head_->SetTraining(true);
  return out;
}

size_t FullTreeModel::NumParameters() const {
  return conv_->NumParameters() + head_->NumParameters();
}

size_t FullTreeModel::InputBytesPerBatch(size_t batch_size) const {
  return batch_size * max_nodes_ * config_.feature_dim * sizeof(float);
}

}  // namespace prestroid::core
