#ifndef PRESTROID_CORE_METRICS_H_
#define PRESTROID_CORE_METRICS_H_

#include <vector>

#include "core/label_transform.h"

namespace prestroid::core {

/// MSE in minutes^2 — the unit of the paper's Table 2: predictions are
/// denormalized back into minutes before squaring.
double MseMinutes(const std::vector<float>& predicted_norm,
                  const std::vector<double>& actual_minutes,
                  const LabelTransform& transform);

/// Resource allocation accuracy (paper Figure 5): how much of the cluster's
/// actual CPU resources a model over- and under-allocates across a test set.
/// over_pct = sum of excess allocation over queries where pred > actual, as
/// a percentage of total actual CPU time; under_pct analogously for deficit.
struct ProvisioningAccuracy {
  double over_pct = 0.0;
  double under_pct = 0.0;
  size_t num_over = 0;
  size_t num_under = 0;
};

ProvisioningAccuracy ComputeProvisioning(
    const std::vector<float>& predicted_norm,
    const std::vector<double>& actual_minutes, const LabelTransform& transform);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
double SampleStdDev(const std::vector<double>& values);

}  // namespace prestroid::core

#endif  // PRESTROID_CORE_METRICS_H_
