#include "core/featurizer.h"

#include "util/logging.h"

namespace prestroid::core {

Featurizer::Featurizer(const otp::OtpEncoder* encoder,
                       embed::PredicateEncoder* predicate_encoder)
    : encoder_(encoder), predicate_encoder_(predicate_encoder) {
  PRESTROID_CHECK(encoder != nullptr);
  PRESTROID_CHECK(predicate_encoder != nullptr);
}

void Featurizer::InstallQueryContext(const otp::OtpTree& tree) const {
  std::vector<const sql::Expr*> predicates;
  otp::FlatOtpTree flat = otp::Flatten(tree);
  for (const otp::OtpNode* node : flat.nodes) {
    if (node->type == otp::OtpNodeType::kPredicate &&
        node->predicate != nullptr) {
      predicates.push_back(node->predicate.get());
    }
  }
  predicate_encoder_->SetQueryContext(predicates);
}

Result<TreeFeatures> Featurizer::FeaturizeFullPlan(
    const plan::PlanNode& plan) const {
  PRESTROID_ASSIGN_OR_RETURN(otp::OtpTree tree, otp::RecastPlan(plan));
  InstallQueryContext(tree);
  otp::FlatOtpTree flat = otp::Flatten(tree);
  TreeFeatures features;
  features.features = encoder_->EncodeTree(flat);
  features.left = flat.left;
  features.right = flat.right;
  features.votes.assign(flat.size(), 1.0f);
  predicate_encoder_->ClearQueryContext();
  return features;
}

Result<std::vector<TreeFeatures>> Featurizer::FeaturizeSubtrees(
    const plan::PlanNode& plan, const subtree::SubtreeSamplerConfig& config,
    size_t k, subtree::PruningStrategy strategy) const {
  PRESTROID_ASSIGN_OR_RETURN(otp::OtpTree tree, otp::RecastPlan(plan));
  InstallQueryContext(tree);
  PRESTROID_ASSIGN_OR_RETURN(
      std::vector<subtree::SubtreeSample> samples,
      subtree::DecomposeTree(*tree.root, config, strategy));
  const size_t take = std::min(k, samples.size());
  const size_t dim = encoder_->feature_dim();
  std::vector<TreeFeatures> out;
  out.reserve(take);
  for (size_t s = 0; s < take; ++s) {
    const subtree::SubtreeSample& sample = samples[s];
    TreeFeatures features;
    features.features = Tensor({sample.size(), dim});
    for (size_t i = 0; i < sample.size(); ++i) {
      encoder_->EncodeNode(*sample.nodes[i],
                           features.features.data() + i * dim);
    }
    features.left = sample.left;
    features.right = sample.right;
    features.votes = sample.votes;
    out.push_back(std::move(features));
  }
  predicate_encoder_->ClearQueryContext();
  return out;
}

}  // namespace prestroid::core
