#include "core/continual_trainer.h"

#include <cmath>
#include <utility>

#include "util/random.h"

namespace prestroid::core {

namespace {

/// Smallest buffer a retrain will split: 80/20 over this still leaves a
/// couple of validation rows for early stopping.
constexpr size_t kMinRetrainRecords = 10;

workload::QueryRecord CloneRecord(const workload::QueryRecord& record) {
  workload::QueryRecord copy;
  copy.id = record.id;
  copy.day = record.day;
  copy.template_id = record.template_id;
  copy.sql = record.sql;
  copy.plan = record.plan == nullptr ? nullptr : record.plan->Clone();
  copy.metrics = record.metrics;
  return copy;
}

}  // namespace

ContinualTrainer::ContinualTrainer(ContinualTrainerConfig config)
    : config_(std::move(config)) {}

void ContinualTrainer::AddRecord(const workload::QueryRecord& record) {
  if (record.plan == nullptr ||
      !std::isfinite(record.metrics.total_cpu_minutes)) {
    return;
  }
  buffer_.push_back(CloneRecord(record));
  if (config_.max_buffer > 0 && buffer_.size() > config_.max_buffer) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() +
                      static_cast<long>(buffer_.size() - config_.max_buffer));
  }
  ++since_retrain_;
}

bool ContinualTrainer::RetrainDue() const {
  return since_retrain_ >= config_.retrain_interval &&
         buffer_.size() >= kMinRetrainRecords;
}

Result<CandidateReport> ContinualTrainer::RetrainCandidate() {
  if (buffer_.size() < kMinRetrainRecords) {
    return Status::InvalidArgument(
        "continual retrain needs at least " +
        std::to_string(kMinRetrainRecords) + " buffered records, have " +
        std::to_string(buffer_.size()));
  }

  // A fresh shuffle per retrain (seeded deterministically off the retrain
  // ordinal) so successive candidates don't validate on the same rows.
  Rng rng(config_.pipeline.seed + 0x9e3779b9u * (retrain_count_ + 1));
  workload::DatasetSplits splits =
      workload::SplitRandom(buffer_.size(), 0.8, 0.2, &rng);

  PRESTROID_ASSIGN_OR_RETURN(
      std::unique_ptr<PrestroidPipeline> pipeline,
      PrestroidPipeline::Fit(buffer_, splits.train, config_.pipeline));

  TrainResult train = pipeline->Train(splits, config_.train);
  if (train.diverged) {
    // Exhausted NaN-recovery retries: the weights are whatever checkpoint
    // survived, but a run that could not finish is not promotion evidence.
    // Publish nothing — the active model keeps serving.
    return Status::Internal(
        "continual retrain diverged after " +
        std::to_string(train.nan_rollbacks) +
        " NaN rollback(s); candidate not published");
  }

  CandidateReport report;
  report.train = train;
  report.records_used = buffer_.size();
  report.val_mse_minutes = pipeline->EvaluateMseMinutes(splits.val);
  report.artifact_path = config_.candidate_path;
  PRESTROID_RETURN_NOT_OK(pipeline->SaveFile(config_.candidate_path));

  since_retrain_ = 0;
  ++retrain_count_;
  return report;
}

}  // namespace prestroid::core
