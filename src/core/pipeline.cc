#include "core/pipeline.h"

#include "embed/predicate_tokenizer.h"
#include "nn/quantize.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::core {

namespace {

/// Collects the PRED expressions of an O-T-P tree. Explicit-stack: OTP
/// trees mirror plan depth, which the ingestion limits allow to far exceed
/// what recursion could survive on a default thread stack.
void CollectPredicates(const otp::OtpNode& root,
                       std::vector<const sql::Expr*>* out) {
  std::vector<const otp::OtpNode*> stack = {&root};
  while (!stack.empty()) {
    const otp::OtpNode& node = *stack.back();
    stack.pop_back();
    if (node.type == otp::OtpNodeType::kPredicate &&
        node.predicate != nullptr) {
      out->push_back(node.predicate.get());
    }
    if (node.right != nullptr) stack.push_back(node.right.get());
    if (node.left != nullptr) stack.push_back(node.left.get());
  }
}

}  // namespace

Result<std::unique_ptr<PrestroidPipeline>> PrestroidPipeline::Fit(
    const std::vector<workload::QueryRecord>& records,
    const std::vector<size_t>& train_indices, const PipelineConfig& config) {
  if (records.empty()) {
    return Status::InvalidArgument("cannot fit pipeline on an empty trace");
  }
  if (train_indices.empty()) {
    return Status::InvalidArgument("training partition is empty");
  }
  auto pipeline = std::unique_ptr<PrestroidPipeline>(new PrestroidPipeline());
  pipeline->config_ = config;
  pipeline->exec_ctx_ = std::make_unique<ExecutionContext>(config.threads);
  ExecutionContext* ctx = pipeline->exec_ctx_.get();
  if (!config.kernel.empty()) {
    std::optional<KernelBackend> backend =
        KernelRegistry::ParseBackend(config.kernel);
    if (!backend.has_value()) {
      return Status::InvalidArgument("unknown kernel backend: " +
                                     config.kernel);
    }
    ctx->mutable_kernels()->SetAllBackends(*backend);
  }

  // 1. Label transform over the whole corpus (paper Section 5.1).
  pipeline->cpu_minutes_ = workload::CpuMinutesOf(records);
  PRESTROID_RETURN_NOT_OK(pipeline->transform_.Fit(pipeline->cpu_minutes_));
  pipeline->targets_ =
      pipeline->transform_.NormalizeAll(pipeline->cpu_minutes_);

  // 2. Re-cast every plan once (train trees also feed the vocabularies).
  // Record i's tree lands in slot i regardless of thread count; errors are
  // reported for the lowest failing index, matching the serial loop.
  std::vector<otp::OtpTree> trees(records.size());
  std::vector<Status> recast_errors(records.size());
  ctx->ParallelFor(0, records.size(), /*grain=*/8,
                   [&](size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       Result<otp::OtpTree> tree =
                           otp::RecastPlan(*records[i].plan);
                       if (!tree.ok()) {
                         recast_errors[i] = tree.status();
                         continue;
                       }
                       trees[i] = std::move(tree).value();
                     }
                   });
  for (const Status& status : recast_errors) {
    PRESTROID_RETURN_NOT_OK(status);
  }

  // 3. Word2Vec over the TRAIN predicates (values and conjunctions
  // stripped), window 5, min_count per config.
  std::vector<std::vector<std::string>> sentences;
  std::vector<const sql::Expr*> train_predicates;
  for (size_t idx : train_indices) {
    std::vector<const sql::Expr*> predicates;
    CollectPredicates(*trees[idx].root, &predicates);
    for (const sql::Expr* predicate : predicates) {
      std::vector<std::string> sentence =
          embed::TokenizePredicate(*predicate);
      if (sentence.size() >= 2) sentences.push_back(std::move(sentence));
      train_predicates.push_back(predicate);
    }
  }
  pipeline->word2vec_ = std::make_unique<embed::Word2Vec>(config.word2vec);
  PRESTROID_RETURN_NOT_OK(pipeline->word2vec_->Train(sentences));

  // 4. Predicate encoder with the global OOV fallback.
  pipeline->predicate_encoder_ =
      std::make_unique<embed::PredicateEncoder>(pipeline->word2vec_.get());
  pipeline->predicate_encoder_->FitGlobalFallback(train_predicates);

  // 5. Operator / table vocabularies from the train trees.
  pipeline->encoder_ =
      std::make_unique<otp::OtpEncoder>(pipeline->predicate_encoder_.get());
  std::vector<const otp::OtpTree*> train_trees;
  train_trees.reserve(train_indices.size());
  for (size_t idx : train_indices) train_trees.push_back(&trees[idx]);
  pipeline->encoder_->FitVocabulary(train_trees);

  pipeline->featurizer_ = std::make_unique<Featurizer>(
      pipeline->encoder_.get(), pipeline->predicate_encoder_.get());

  // 6. Model construction + featurization of every record.
  const size_t feature_dim = pipeline->encoder_->feature_dim();
  if (config.use_subtrees) {
    SubtreeModelConfig model_config;
    model_config.feature_dim = feature_dim;
    model_config.node_limit = config.sampler.node_limit;
    model_config.num_subtrees = config.num_subtrees;
    model_config.conv_channels = config.conv_channels;
    model_config.dense_units = config.dense_units;
    model_config.dropout = config.dropout;
    model_config.batch_norm = config.batch_norm;
    model_config.learning_rate = config.learning_rate;
    model_config.seed = config.seed;
    model_config.name =
        StrFormat("Prestroid (%zu-%zu-%zu)", config.sampler.node_limit,
                  config.num_subtrees, config.word2vec.dim);
    if (config.pruning != subtree::PruningStrategy::kAlgorithm1) {
      model_config.name +=
          StrFormat(" [%s]", subtree::PruningStrategyToString(config.pruning));
    }
    pipeline->subtree_model_ = std::make_unique<SubtreeModel>(model_config);
    // Featurize all records in parallel. The predicate encoder carries
    // mutable per-query OOV context, so each chunk featurizes through its
    // own encoder clone; results land in index-keyed slots and samples are
    // added serially in record order afterwards.
    std::vector<std::vector<TreeFeatures>> all_subtrees(records.size());
    std::vector<Status> feat_errors(records.size());
    ctx->ParallelFor(
        0, records.size(), /*grain=*/4, [&](size_t begin, size_t end) {
          embed::PredicateEncoder pred_clone(*pipeline->predicate_encoder_);
          otp::OtpEncoder enc_clone(&pred_clone);
          enc_clone.RestoreVocabulary(pipeline->encoder_->operator_ids(),
                                      pipeline->encoder_->table_ids());
          Featurizer featurizer(&enc_clone, &pred_clone);
          for (size_t i = begin; i < end; ++i) {
            Result<std::vector<TreeFeatures>> subtrees =
                featurizer.FeaturizeSubtrees(*records[i].plan, config.sampler,
                                             config.num_subtrees,
                                             config.pruning);
            if (!subtrees.ok()) {
              feat_errors[i] = subtrees.status();
              continue;
            }
            all_subtrees[i] = std::move(subtrees).value();
          }
        });
    for (const Status& status : feat_errors) {
      PRESTROID_RETURN_NOT_OK(status);
    }
    for (size_t i = 0; i < records.size(); ++i) {
      pipeline->subtree_model_->AddSample(std::move(all_subtrees[i]),
                                          pipeline->targets_[i]);
    }
  } else {
    FullTreeModelConfig model_config;
    model_config.feature_dim = feature_dim;
    model_config.conv_channels = config.conv_channels;
    model_config.dense_units = config.dense_units;
    model_config.dropout = config.dropout;
    model_config.batch_norm = config.batch_norm;
    model_config.learning_rate = config.learning_rate;
    model_config.seed = config.seed;
    model_config.name = StrFormat("Full-%zu", config.word2vec.dim);
    pipeline->full_model_ = std::make_unique<FullTreeModel>(model_config);
    std::vector<TreeFeatures> all_features(records.size());
    std::vector<Status> feat_errors(records.size());
    ctx->ParallelFor(
        0, records.size(), /*grain=*/4, [&](size_t begin, size_t end) {
          embed::PredicateEncoder pred_clone(*pipeline->predicate_encoder_);
          otp::OtpEncoder enc_clone(&pred_clone);
          enc_clone.RestoreVocabulary(pipeline->encoder_->operator_ids(),
                                      pipeline->encoder_->table_ids());
          Featurizer featurizer(&enc_clone, &pred_clone);
          for (size_t i = begin; i < end; ++i) {
            Result<TreeFeatures> features =
                featurizer.FeaturizeFullPlan(*records[i].plan);
            if (!features.ok()) {
              feat_errors[i] = features.status();
              continue;
            }
            all_features[i] = std::move(features).value();
          }
        });
    for (const Status& status : feat_errors) {
      PRESTROID_RETURN_NOT_OK(status);
    }
    for (size_t i = 0; i < records.size(); ++i) {
      pipeline->full_model_->AddSample(std::move(all_features[i]),
                                       pipeline->targets_[i]);
    }
    pipeline->full_model_->Finalize();
  }
  pipeline->model()->SetExecutionContext(ctx);
  return pipeline;
}

CostModel* PrestroidPipeline::model() {
  return config_.use_subtrees ? static_cast<CostModel*>(subtree_model_.get())
                              : static_cast<CostModel*>(full_model_.get());
}

Status PrestroidPipeline::SetInferencePrecision(
    Precision precision, const QuantizationProfile* profile) {
  std::vector<QuantizableLayer*> layers;
  model()->CollectQuantLayers(&layers);
  // Clear first: any failure below leaves the pipeline serving plain fp32,
  // never a half-frozen mix of precisions.
  for (QuantizableLayer* layer : layers) layer->ClearInferencePrecision();
  inference_precision_ = Precision::kFp32;
  if (precision == Precision::kFp32) return Status::OK();
  if (layers.empty()) {
    return Status::FailedPrecondition(
        "model has no quantizable layers for precision " +
        std::string(KernelRegistry::PrecisionName(precision)));
  }
  if (profile != nullptr && profile->layers.size() != layers.size()) {
    return Status::InvalidArgument(StrFormat(
        "quantization profile has %zu layers but the model has %zu — "
        "recalibrate against this model",
        profile->layers.size(), layers.size()));
  }
  for (size_t i = 0; i < layers.size(); ++i) {
    const float act_scale =
        profile != nullptr ? profile->layers[i].act_scale : -1.0f;
    Status prepared = layers[i]->PrepareInferencePrecision(precision, act_scale);
    if (!prepared.ok()) {
      for (QuantizableLayer* layer : layers) layer->ClearInferencePrecision();
      return prepared;
    }
  }
  inference_precision_ = precision;
  return Status::OK();
}

Result<QuantizationProfile> PrestroidPipeline::CalibrateQuantization(
    const std::vector<const PlanFeatures*>& sample, double clip_percentile) {
  if (inference_precision_ != Precision::kFp32) {
    return Status::FailedPrecondition(
        "calibration must run on the fp32 pipeline — reset the precision "
        "first");
  }
  if (sample.empty()) {
    return Status::InvalidArgument("calibration needs at least one plan");
  }
  std::vector<QuantizableLayer*> layers;
  model()->CollectQuantLayers(&layers);
  if (layers.empty()) {
    return Status::FailedPrecondition("model has no quantizable layers");
  }
  std::vector<QuantCalibration> recorders(layers.size());
  for (size_t i = 0; i < layers.size(); ++i) {
    layers[i]->set_calibration_sink(&recorders[i]);
  }
  // The recording pass: fp32 eval forwards; predictions are discarded.
  PredictFeaturized(sample);
  for (QuantizableLayer* layer : layers) layer->set_calibration_sink(nullptr);

  QuantizationProfile profile;
  profile.clip_percentile = clip_percentile;
  profile.samples = sample.size();
  profile.layers.reserve(layers.size());
  for (const QuantCalibration& rec : recorders) {
    PRESTROID_ASSIGN_OR_RETURN(QuantRange range,
                               rec.Resolve(clip_percentile));
    profile.layers.push_back({range.act_scale, range.act_min, range.act_max});
  }
  return profile;
}

size_t PrestroidPipeline::InferenceWeightBytes() {
  std::vector<QuantizableLayer*> layers;
  model()->CollectQuantLayers(&layers);
  size_t total = 0;
  for (QuantizableLayer* layer : layers) {
    total += layer->resident_weight_bytes();
  }
  return total;
}

TrainResult PrestroidPipeline::Train(const workload::DatasetSplits& splits,
                                     const TrainConfig& train_config) {
  std::vector<float> val_targets;
  val_targets.reserve(splits.val.size());
  for (size_t idx : splits.val) val_targets.push_back(targets_[idx]);
  return TrainWithEarlyStopping(model(), splits.train, splits.val, val_targets,
                                train_config);
}

std::vector<double> PrestroidPipeline::PredictMinutes(
    const std::vector<size_t>& indices) {
  std::vector<float> norm = model()->Predict(indices);
  std::vector<double> minutes;
  minutes.reserve(norm.size());
  for (float n : norm) minutes.push_back(transform_.Denormalize(n));
  return minutes;
}

double PrestroidPipeline::EvaluateMseMinutes(
    const std::vector<size_t>& indices) {
  std::vector<float> norm = model()->Predict(indices);
  std::vector<double> actual;
  actual.reserve(indices.size());
  for (size_t idx : indices) actual.push_back(cpu_minutes_[idx]);
  return MseMinutes(norm, actual, transform_);
}

Result<double> PrestroidPipeline::PredictPlan(const plan::PlanNode& plan) {
  PRESTROID_ASSIGN_OR_RETURN(PlanFeatures features, FeaturizePlan(plan));
  return PredictFeaturized({&features})[0];
}

Result<PlanFeatures> PrestroidPipeline::FeaturizePlan(
    const plan::PlanNode& plan) {
  PRESTROID_RETURN_NOT_OK(plan::CheckPlanLimits(plan, config_.plan_limits));
  PlanFeatures features;
  if (config_.use_subtrees) {
    PRESTROID_ASSIGN_OR_RETURN(
        features.trees,
        featurizer_->FeaturizeSubtrees(plan, config_.sampler,
                                       config_.num_subtrees, config_.pruning));
  } else {
    PRESTROID_ASSIGN_OR_RETURN(TreeFeatures tree,
                               featurizer_->FeaturizeFullPlan(plan));
    features.trees.push_back(std::move(tree));
  }
  return features;
}

std::vector<double> PrestroidPipeline::PredictFeaturized(
    const std::vector<const PlanFeatures*>& batch) {
  if (batch.empty()) return {};
  // One fused eval-mode forward over the borrowed encodings — no staging
  // copies, no mutation of the model's sample store.
  std::vector<float> norm;
  if (config_.use_subtrees) {
    std::vector<const std::vector<TreeFeatures>*> samples;
    samples.reserve(batch.size());
    for (const PlanFeatures* features : batch) samples.push_back(&features->trees);
    norm = subtree_model_->PredictBorrowed(samples);
  } else {
    std::vector<const TreeFeatures*> samples;
    samples.reserve(batch.size());
    for (const PlanFeatures* features : batch) {
      samples.push_back(&features->trees.front());
    }
    norm = full_model_->PredictBorrowed(samples);
  }
  std::vector<double> minutes;
  minutes.reserve(norm.size());
  for (float n : norm) minutes.push_back(transform_.Denormalize(n));
  return minutes;
}

std::string PrestroidPipeline::ModelName() const {
  if (!config_.use_subtrees) {
    return StrFormat("Full-%zu", config_.word2vec.dim);
  }
  std::string name =
      StrFormat("Prestroid (%zu-%zu-%zu)", config_.sampler.node_limit,
                config_.num_subtrees, config_.word2vec.dim);
  if (config_.pruning != subtree::PruningStrategy::kAlgorithm1) {
    name += StrFormat(" [%s]", subtree::PruningStrategyToString(config_.pruning));
  }
  return name;
}

size_t PrestroidPipeline::InputBytesPerBatch(size_t batch_size) const {
  return config_.use_subtrees
             ? subtree_model_->InputBytesPerBatch(batch_size)
             : full_model_->InputBytesPerBatch(batch_size);
}

}  // namespace prestroid::core
