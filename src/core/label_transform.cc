#include "core/label_transform.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace prestroid::core {

Status LabelTransform::Fit(const std::vector<double>& cpu_minutes) {
  if (cpu_minutes.empty()) {
    return Status::InvalidArgument("cannot fit label transform on empty data");
  }
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double v : cpu_minutes) {
    if (v <= 0.0) {
      return Status::InvalidArgument("CPU minutes must be positive");
    }
    double lv = std::log(v);
    lo = std::min(lo, lv);
    hi = std::max(hi, lv);
  }
  if (hi <= lo) hi = lo + 1e-9;  // degenerate single-valued corpus
  log_min_ = lo;
  log_max_ = hi;
  fitted_ = true;
  return Status::OK();
}

float LabelTransform::Normalize(double cpu_minutes) const {
  PRESTROID_CHECK(fitted_);
  PRESTROID_CHECK_GT(cpu_minutes, 0.0);
  double norm = (std::log(cpu_minutes) - log_min_) / (log_max_ - log_min_);
  return static_cast<float>(std::clamp(norm, 0.0, 1.0));
}

double LabelTransform::Denormalize(float normalized) const {
  PRESTROID_CHECK(fitted_);
  double n = std::clamp(static_cast<double>(normalized), 0.0, 1.0);
  return std::exp(log_min_ + n * (log_max_ - log_min_));
}

std::vector<float> LabelTransform::NormalizeAll(
    const std::vector<double>& cpu_minutes) const {
  std::vector<float> out;
  out.reserve(cpu_minutes.size());
  for (double v : cpu_minutes) out.push_back(Normalize(v));
  return out;
}

}  // namespace prestroid::core
