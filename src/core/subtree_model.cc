#include "core/subtree_model.h"

#include <cstring>

#include "util/logging.h"

namespace prestroid::core {

SubtreeModel::SubtreeModel(const SubtreeModelConfig& config)
    : config_(config),
      rng_(config.seed),
      loss_(config.huber_delta) {
  PRESTROID_CHECK_GT(config_.feature_dim, 0u);
  PRESTROID_CHECK_GT(config_.node_limit, 0u);
  PRESTROID_CHECK_GT(config_.num_subtrees, 0u);
  conv_ = std::make_unique<TreeConvStack>(config_.feature_dim,
                                          config_.conv_channels, &rng_);
  PRESTROID_CHECK_GT(config_.output_dim, 0u);
  DenseHeadConfig head_config;
  head_config.input_dim = config_.num_subtrees * conv_->output_dim();
  head_config.hidden = config_.dense_units;
  head_config.dropout = config_.dropout;
  head_config.batch_norm = config_.batch_norm;
  head_config.outputs = config_.output_dim;
  head_ = std::make_unique<DenseHead>(head_config, &rng_);
  optimizer_ = std::make_unique<AdamOptimizer>(config_.learning_rate);
  optimizer_->Register(conv_->Params());
  optimizer_->Register(head_->Params());
}

void SubtreeModel::AddSample(std::vector<TreeFeatures> subtrees,
                             float target) {
  PRESTROID_CHECK_EQ(config_.output_dim, 1u);
  AddSampleMulti(std::move(subtrees), {target});
}

void SubtreeModel::AddSampleMulti(std::vector<TreeFeatures> subtrees,
                                  const std::vector<float>& targets) {
  PRESTROID_CHECK_EQ(targets.size(), config_.output_dim);
  for (const TreeFeatures& tree : subtrees) {
    PRESTROID_CHECK_LE(tree.num_nodes(), config_.node_limit);
    PRESTROID_CHECK_EQ(tree.features.dim(1), config_.feature_dim);
  }
  if (subtrees.size() > config_.num_subtrees) {
    subtrees.resize(config_.num_subtrees);
  }
  samples_.push_back(std::move(subtrees));
  // Flat [num_samples, output_dim] layout.
  for (float target : targets) targets_.push_back(target);
}

void SubtreeModel::PopSample() {
  PRESTROID_CHECK(!samples_.empty());
  samples_.pop_back();
  for (size_t i = 0; i < config_.output_dim; ++i) targets_.pop_back();
}

void SubtreeModel::SetExecutionContext(ExecutionContext* ctx) {
  ctx_ = ctx;
  conv_->BindContext(ctx);
  pooling_.set_context(ctx);
  head_->BindContext(ctx);
}

void SubtreeModel::AssembleBatch(const std::vector<size_t>& batch,
                                 TreeStructure* structure,
                                 Tensor* features_out) const {
  const size_t b = batch.size();
  const size_t k = config_.num_subtrees;
  const size_t n = config_.node_limit;
  const size_t f = config_.feature_dim;

  Tensor& features = *features_out;
  features.ResetShape({b * k, n, f});
  features.Fill(0.0f);  // padding slots must stay zero
  structure->left.assign(b * k, std::vector<int>(n, -1));
  structure->right.assign(b * k, std::vector<int>(n, -1));
  structure->mask.assign(b * k, std::vector<float>(n, 0.0f));

  for (size_t i = 0; i < b; ++i) {
    const std::vector<TreeFeatures>& trees = samples_[batch[i]];
    for (size_t s = 0; s < trees.size(); ++s) {
      const TreeFeatures& tree = trees[s];
      const size_t slot = i * k + s;
      const size_t count = tree.num_nodes();
      std::memcpy(features.data() + slot * n * f, tree.features.data(),
                  sizeof(float) * count * f);
      for (size_t node = 0; node < count; ++node) {
        structure->left[slot][node] = tree.left[node];
        structure->right[slot][node] = tree.right[node];
        structure->mask[slot][node] = tree.votes[node];
      }
    }
    // Missing sub-trees (trees.size() < K) keep all-zero masks: they pool to
    // the zero vector, exactly like a fully 0-padded sub-tree slot.
  }
}

void SubtreeModel::AssembleBorrowed(
    const std::vector<const std::vector<TreeFeatures>*>& samples, size_t start,
    size_t end, TreeStructure* structure, Tensor* features_out) const {
  const size_t b = end - start;
  const size_t k = config_.num_subtrees;
  const size_t n = config_.node_limit;
  const size_t f = config_.feature_dim;

  Tensor& features = *features_out;
  features.ResetShape({b * k, n, f});
  features.Fill(0.0f);  // padding slots must stay zero
  structure->left.assign(b * k, std::vector<int>(n, -1));
  structure->right.assign(b * k, std::vector<int>(n, -1));
  structure->mask.assign(b * k, std::vector<float>(n, 0.0f));

  for (size_t i = 0; i < b; ++i) {
    const std::vector<TreeFeatures>& trees = *samples[start + i];
    const size_t used = std::min(trees.size(), k);
    for (size_t s = 0; s < used; ++s) {
      const TreeFeatures& tree = trees[s];
      PRESTROID_CHECK_LE(tree.num_nodes(), n);
      PRESTROID_CHECK_EQ(tree.features.dim(1), f);
      const size_t slot = i * k + s;
      const size_t count = tree.num_nodes();
      std::memcpy(features.data() + slot * n * f, tree.features.data(),
                  sizeof(float) * count * f);
      for (size_t node = 0; node < count; ++node) {
        structure->left[slot][node] = tree.left[node];
        structure->right[slot][node] = tree.right[node];
        structure->mask[slot][node] = tree.votes[node];
      }
    }
  }
}

std::vector<float> SubtreeModel::PredictBorrowed(
    const std::vector<const std::vector<TreeFeatures>*>& samples) {
  head_->SetTraining(false);
  std::vector<float> out;
  out.reserve(samples.size());
  constexpr size_t kEvalBatch = 64;
  for (size_t start = 0; start < samples.size(); start += kEvalBatch) {
    const size_t end = std::min(samples.size(), start + kEvalBatch);
    TreeStructure structure;
    AssembleBorrowed(samples, start, end, &structure, &features_ws_);
    const Tensor& pred = ForwardBatch(features_ws_, structure);
    // CostModel convention: the first objective (total CPU time).
    for (size_t i = 0; i < end - start; ++i) {
      out.push_back(pred.At(i, 0));
    }
  }
  head_->SetTraining(true);
  return out;
}

const Tensor& SubtreeModel::ForwardBatch(const Tensor& features,
                                         const TreeStructure& structure) {
  const size_t bk = features.dim(0);
  const size_t b = bk / config_.num_subtrees;
  const Tensor& conv_out = conv_->Forward(features, structure);
  Tensor& pooled = pooling_.Forward(conv_out, structure);  // [B*K, C]
  // Row-major [B*K, C] is bitwise identical to [B, K*C]: flattening across
  // sub-trees is a pure relabeling of the pooling workspace.
  pooled.ReshapeInPlace({b, config_.num_subtrees * conv_->output_dim()});
  return head_->Forward(pooled);
}

double SubtreeModel::TrainEpoch(const std::vector<size_t>& indices,
                                size_t batch_size) {
  PRESTROID_CHECK_GT(batch_size, 0u);
  head_->SetTraining(true);
  double total_loss = 0.0;
  size_t num_batches = 0;
  for (size_t start = 0; start < indices.size(); start += batch_size) {
    const size_t end = std::min(indices.size(), start + batch_size);
    std::vector<size_t> batch(indices.begin() + static_cast<long>(start),
                              indices.begin() + static_cast<long>(end));
    TreeStructure structure;
    AssembleBatch(batch, &structure, &features_ws_);
    const Tensor& pred = ForwardBatch(features_ws_, structure);

    const size_t out = config_.output_dim;
    target_ws_.ResetShape({batch.size(), out});
    for (size_t i = 0; i < batch.size(); ++i) {
      for (size_t j = 0; j < out; ++j) {
        target_ws_[i * out + j] = targets_[batch[i] * out + j];
      }
    }

    optimizer_->ZeroGrad();
    total_loss += loss_.Compute(pred, target_ws_);
    ++num_batches;

    loss_.GradientInto(&grad_ws_);
    const Tensor& grad_head = head_->Backward(grad_ws_);  // [B, K*C]
    grad_pooled_ws_.CopyFrom(grad_head);
    grad_pooled_ws_.ReshapeInPlace(
        {batch.size() * config_.num_subtrees, conv_->output_dim()});
    const Tensor& grad_conv = pooling_.Backward(grad_pooled_ws_);
    conv_->Backward(grad_conv);
    optimizer_->Step();
  }
  return num_batches == 0 ? 0.0 : total_loss / static_cast<double>(num_batches);
}

Tensor SubtreeModel::PredictMulti(const std::vector<size_t>& indices) {
  head_->SetTraining(false);
  const size_t out_dim = config_.output_dim;
  Tensor out({indices.size(), out_dim});
  constexpr size_t kEvalBatch = 64;
  for (size_t start = 0; start < indices.size(); start += kEvalBatch) {
    const size_t end = std::min(indices.size(), start + kEvalBatch);
    std::vector<size_t> batch(indices.begin() + static_cast<long>(start),
                              indices.begin() + static_cast<long>(end));
    TreeStructure structure;
    AssembleBatch(batch, &structure, &features_ws_);
    const Tensor& pred = ForwardBatch(features_ws_, structure);
    for (size_t i = 0; i < batch.size(); ++i) {
      for (size_t j = 0; j < out_dim; ++j) {
        out.At(start + i, j) = pred.At(i, j);
      }
    }
  }
  head_->SetTraining(true);
  return out;
}

std::vector<float> SubtreeModel::Predict(const std::vector<size_t>& indices) {
  Tensor multi = PredictMulti(indices);
  std::vector<float> out;
  out.reserve(indices.size());
  // CostModel interface: the first objective (total CPU time).
  for (size_t i = 0; i < indices.size(); ++i) out.push_back(multi.At(i, 0));
  return out;
}

size_t SubtreeModel::NumParameters() const {
  return conv_->NumParameters() + head_->NumParameters();
}

size_t SubtreeModel::InputBytesPerBatch(size_t batch_size) const {
  return batch_size * config_.num_subtrees * config_.node_limit *
         config_.feature_dim * sizeof(float);
}

}  // namespace prestroid::core
