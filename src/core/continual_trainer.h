#ifndef PRESTROID_CORE_CONTINUAL_TRAINER_H_
#define PRESTROID_CORE_CONTINUAL_TRAINER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "nn/trainer.h"
#include "util/status.h"
#include "workload/trace.h"

namespace prestroid::core {

/// Policy for the shadow retraining loop feeding the hot-swap pipeline.
struct ContinualTrainerConfig {
  /// Pipeline architecture for retrained candidates (typically the same
  /// shape the serving model was trained with).
  PipelineConfig pipeline;
  /// Training-loop settings; snapshot_path/snapshot_every/resume engage the
  /// existing crash-safe snapshot machinery, so an interrupted retrain
  /// resumes instead of restarting.
  TrainConfig train;
  /// A retrain becomes due every time this many fresh labeled records have
  /// accumulated since the last candidate.
  size_t retrain_interval = 256;
  /// Sliding buffer of the freshest labeled records retraining draws from
  /// (oldest evicted first). Bounds both memory and per-retrain cost.
  size_t max_buffer = 4096;
  /// Where RetrainCandidate publishes its artifact (SaveFile; atomic
  /// temp+fsync+rename with CRC, so the serving side can never load a
  /// half-written candidate).
  std::string candidate_path = "candidate.ppl";
};

/// One published candidate artifact.
struct CandidateReport {
  std::string artifact_path;
  TrainResult train;
  size_t records_used = 0;
  /// MSE in minutes^2 on the retrain's own validation partition.
  double val_mse_minutes = 0.0;
};

/// Shadow trainer for continual learning: accumulates fresh labeled query
/// records (e.g. from the serving loop once ground-truth costs arrive),
/// periodically refits and retrains a candidate pipeline on the freshest
/// window, and publishes it as a CRC-checksummed artifact for
/// serve::ModelManager::TryPromote to validate and hot-swap.
///
/// A retrain that diverges (NaN retries exhausted) publishes nothing and
/// returns an error — a known-bad model never becomes a candidate. Not
/// thread-safe; confine to the control thread that also drives promotion.
class ContinualTrainer {
 public:
  explicit ContinualTrainer(ContinualTrainerConfig config);

  /// Buffers a deep copy of one labeled record (the caller keeps ownership).
  /// Records with non-finite labels are ignored — the tolerant ingest layer
  /// quarantines them upstream, but a direct caller gets the same shield.
  void AddRecord(const workload::QueryRecord& record);

  size_t buffered() const { return buffer_.size(); }

  /// True once retrain_interval fresh records have arrived since the last
  /// RetrainCandidate call (and the buffer is big enough to split).
  bool RetrainDue() const;

  /// Fits + trains a candidate on the buffered records and saves it to
  /// config().candidate_path. Errors (too little data, divergence, failed
  /// save) leave no artifact behind.
  Result<CandidateReport> RetrainCandidate();

  const ContinualTrainerConfig& config() const { return config_; }

 private:
  ContinualTrainerConfig config_;
  std::vector<workload::QueryRecord> buffer_;
  size_t since_retrain_ = 0;
  size_t retrain_count_ = 0;
};

}  // namespace prestroid::core

#endif  // PRESTROID_CORE_CONTINUAL_TRAINER_H_
