#include "core/metrics.h"

#include <cmath>

#include "util/logging.h"

namespace prestroid::core {

double MseMinutes(const std::vector<float>& predicted_norm,
                  const std::vector<double>& actual_minutes,
                  const LabelTransform& transform) {
  PRESTROID_CHECK_EQ(predicted_norm.size(), actual_minutes.size());
  PRESTROID_CHECK(!predicted_norm.empty());
  double total = 0.0;
  for (size_t i = 0; i < predicted_norm.size(); ++i) {
    double diff = transform.Denormalize(predicted_norm[i]) - actual_minutes[i];
    total += diff * diff;
  }
  return total / static_cast<double>(predicted_norm.size());
}

ProvisioningAccuracy ComputeProvisioning(
    const std::vector<float>& predicted_norm,
    const std::vector<double>& actual_minutes,
    const LabelTransform& transform) {
  PRESTROID_CHECK_EQ(predicted_norm.size(), actual_minutes.size());
  ProvisioningAccuracy acc;
  double total_actual = 0.0, over = 0.0, under = 0.0;
  for (size_t i = 0; i < predicted_norm.size(); ++i) {
    double predicted = transform.Denormalize(predicted_norm[i]);
    double actual = actual_minutes[i];
    total_actual += actual;
    if (predicted > actual) {
      over += predicted - actual;
      ++acc.num_over;
    } else if (predicted < actual) {
      under += actual - predicted;
      ++acc.num_under;
    }
  }
  if (total_actual > 0.0) {
    acc.over_pct = over / total_actual * 100.0;
    acc.under_pct = under / total_actual * 100.0;
  }
  return acc;
}

double SampleStdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - mean) * (v - mean);
  return std::sqrt(sq / static_cast<double>(values.size() - 1));
}

}  // namespace prestroid::core
