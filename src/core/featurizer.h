#ifndef PRESTROID_CORE_FEATURIZER_H_
#define PRESTROID_CORE_FEATURIZER_H_

#include <vector>

#include "embed/predicate_encoder.h"
#include "otp/otp_encoder.h"
#include "subtree/naive_pruning.h"
#include "subtree/subtree_sampler.h"
#include "tensor/tensor.h"

namespace prestroid::core {

/// Model-ready features of one binary tree (a full plan or one sub-tree):
/// per-node feature rows plus the structural arrays the tree convolution
/// consumes.
struct TreeFeatures {
  Tensor features;          // [num_nodes, feature_dim]
  std::vector<int> left;    // local child indices, -1 = none
  std::vector<int> right;
  std::vector<float> votes; // pooling mask (all 1 for full trees)

  size_t num_nodes() const { return left.size(); }
};

/// Turns logical plans into tree-convolution inputs: O-T-P re-cast, node
/// encoding (with the per-query OOV context installed on the predicate
/// encoder), and — for the sub-tree path — Algorithm 1 sampling with the
/// first K sub-trees selected (paper Section 4.1).
class Featurizer {
 public:
  /// Both encoders must outlive the featurizer. The predicate encoder is
  /// mutated (query context) during featurization; featurize from one thread.
  Featurizer(const otp::OtpEncoder* encoder,
             embed::PredicateEncoder* predicate_encoder);

  /// Features of the full (unpruned) O-T-P tree.
  Result<TreeFeatures> FeaturizeFullPlan(const plan::PlanNode& plan) const;

  /// The first K sub-trees of the plan (fewer when the plan decomposes into
  /// fewer samples; the model pads missing sub-trees with zero). `strategy`
  /// selects Algorithm 1 or one of the naive pruning ablations.
  Result<std::vector<TreeFeatures>> FeaturizeSubtrees(
      const plan::PlanNode& plan, const subtree::SubtreeSamplerConfig& config,
      size_t k,
      subtree::PruningStrategy strategy =
          subtree::PruningStrategy::kAlgorithm1) const;

  size_t feature_dim() const { return encoder_->feature_dim(); }

 private:
  void InstallQueryContext(const otp::OtpTree& tree) const;

  const otp::OtpEncoder* encoder_;
  embed::PredicateEncoder* predicate_encoder_;
};

}  // namespace prestroid::core

#endif  // PRESTROID_CORE_FEATURIZER_H_
