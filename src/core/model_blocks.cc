#include "core/model_blocks.h"

#include "util/logging.h"

namespace prestroid::core {

TreeConvStack::TreeConvStack(size_t input_dim,
                             const std::vector<size_t>& channels, Rng* rng) {
  PRESTROID_CHECK(!channels.empty());
  size_t in = input_dim;
  for (size_t out : channels) {
    convs_.push_back(std::make_unique<TreeConvLayer>(in, out, rng));
    relus_.push_back(std::make_unique<ReluLayer>());
    in = out;
  }
  output_dim_ = in;
}

const Tensor& TreeConvStack::Forward(const Tensor& features,
                                     const TreeStructure& structure) {
  const Tensor* x = &features;
  for (size_t i = 0; i < convs_.size(); ++i) {
    x = &convs_[i]->Forward(*x, structure);
    x = &relus_[i]->Forward(*x);
  }
  return *x;
}

const Tensor& TreeConvStack::Backward(const Tensor& grad_output) {
  const Tensor* grad = &grad_output;
  for (size_t i = convs_.size(); i-- > 0;) {
    grad = &relus_[i]->Backward(*grad);
    grad = &convs_[i]->Backward(*grad);
  }
  return *grad;
}

void TreeConvStack::BindContext(ExecutionContext* ctx) {
  for (auto& conv : convs_) conv->set_context(ctx);
  for (auto& relu : relus_) relu->set_context(ctx);
}

std::vector<ParamRef> TreeConvStack::Params() {
  std::vector<ParamRef> params;
  for (auto& conv : convs_) {
    for (ParamRef& p : conv->Params()) params.push_back(p);
  }
  return params;
}

size_t TreeConvStack::NumParameters() {
  size_t total = 0;
  for (ParamRef& p : Params()) total += p.value->size();
  return total;
}

void TreeConvStack::CollectQuantLayers(std::vector<QuantizableLayer*>* out) {
  for (auto& conv : convs_) out->push_back(conv.get());
}

DenseHead::DenseHead(const DenseHeadConfig& config, Rng* rng) {
  PRESTROID_CHECK_GT(config.input_dim, 0u);
  size_t in = config.input_dim;
  for (size_t width : config.hidden) {
    layers_.push_back(std::make_unique<Dense>(in, width, rng));
    if (config.batch_norm) {
      layers_.push_back(std::make_unique<BatchNorm1d>(width));
    }
    layers_.push_back(std::make_unique<ReluLayer>());
    if (config.dropout > 0.0f) {
      layers_.push_back(std::make_unique<Dropout>(config.dropout, rng));
    }
    in = width;
  }
  PRESTROID_CHECK_GT(config.outputs, 0u);
  layers_.push_back(std::make_unique<Dense>(in, config.outputs, rng));
  layers_.push_back(std::make_unique<SigmoidLayer>());
}

const Tensor& DenseHead::Forward(const Tensor& input) {
  const Tensor* x = &input;
  for (auto& layer : layers_) x = &layer->Forward(*x);
  return *x;
}

const Tensor& DenseHead::Backward(const Tensor& grad_output) {
  const Tensor* grad = &grad_output;
  for (size_t i = layers_.size(); i-- > 0;) {
    grad = &layers_[i]->Backward(*grad);
  }
  return *grad;
}

void DenseHead::SetTraining(bool training) {
  for (auto& layer : layers_) layer->SetTraining(training);
}

void DenseHead::BindContext(ExecutionContext* ctx) {
  for (auto& layer : layers_) layer->set_context(ctx);
}

std::vector<ParamRef> DenseHead::Params() {
  std::vector<ParamRef> params;
  for (auto& layer : layers_) {
    for (ParamRef& p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::vector<ParamRef> DenseHead::State() {
  std::vector<ParamRef> state;
  for (auto& layer : layers_) {
    for (ParamRef& p : layer->State()) state.push_back(p);
  }
  return state;
}

size_t DenseHead::NumParameters() {
  size_t total = 0;
  for (ParamRef& p : Params()) total += p.value->size();
  return total;
}

void DenseHead::CollectQuantLayers(std::vector<QuantizableLayer*>* out) {
  for (auto& layer : layers_) {
    if (auto* dense = dynamic_cast<Dense*>(layer.get())) out->push_back(dense);
  }
}

}  // namespace prestroid::core
