#ifndef PRESTROID_CORE_FULL_TREE_MODEL_H_
#define PRESTROID_CORE_FULL_TREE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/featurizer.h"
#include "core/model_blocks.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace prestroid::core {

/// Hyper-parameters of the Prestroid full-tree baseline (the tree-conv
/// segment of Neo; "Full-P_f" in the paper's tables).
struct FullTreeModelConfig {
  size_t feature_dim = 0;
  std::vector<size_t> conv_channels = {512, 512, 512};
  std::vector<size_t> dense_units = {128, 64};
  float dropout = 0.1f;
  bool batch_norm = true;
  float learning_rate = 1e-4f;
  float huber_delta = 1.0f;
  uint64_t seed = 2;
  std::string name = "Prestroid-Full";
};

/// Tree convolution over the complete, unpruned O-T-P tree. Every batch is
/// 0-padded to the size of the LARGEST tree in the dataset (the paper's
/// padding regime for full-tree models, Section 5.4) — which is exactly the
/// memory-footprint pathology Prestroid's sub-trees eliminate.
class FullTreeModel : public CostModel {
 public:
  explicit FullTreeModel(const FullTreeModelConfig& config);

  void AddSample(TreeFeatures tree, float target);
  /// Freezes the dataset and records the global padding size. Must be
  /// called after the last AddSample and before training.
  void Finalize();

  /// Finalizes a sample-less model with a known padding size (used when
  /// loading a serialized model for inference-only serving).
  void FinalizeEmpty(size_t max_nodes) {
    max_nodes_ = max_nodes;
    finalized_ = true;
  }

  /// Adds a transient inference-only sample after finalization without
  /// widening the dataset padding (batches containing it pad to its size if
  /// it exceeds the dataset maximum).
  void StageSample(TreeFeatures tree);
  /// Removes the most recently added/staged sample.
  void PopSample();

  /// Fused eval-mode forward over borrowed trees, read in place with no
  /// staging copies and no mutation of the sample store. Identical results
  /// to StageSample + Predict + PopSample (masked pooling makes padding
  /// inert). This is the batched-serving hot path.
  std::vector<float> PredictBorrowed(
      const std::vector<const TreeFeatures*>& samples);

  // CostModel:
  std::string name() const override { return config_.name; }
  size_t num_samples() const override { return samples_.size(); }
  double TrainEpoch(const std::vector<size_t>& indices,
                    size_t batch_size) override;
  std::vector<float> Predict(const std::vector<size_t>& indices) override;
  size_t NumParameters() const override;
  std::vector<ParamRef> Params() override { return optimizer_->params(); }
  std::vector<ParamRef> State() override { return head_->State(); }
  void ScaleLearningRate(float factor) override {
    optimizer_->set_lr(optimizer_->lr() * factor);
  }
  void SerializeOptimizerState(std::ostream& os) const override {
    optimizer_->SerializeState(os);
  }
  Status DeserializeOptimizerState(std::istream& is) override {
    return optimizer_->DeserializeState(is);
  }
  /// Binds `ctx` on every layer of the trunk, pooling and head.
  void SetExecutionContext(ExecutionContext* ctx) override;
  ExecutionContext* execution_context() override { return ctx_; }
  void CollectQuantLayers(std::vector<QuantizableLayer*>* out) override {
    conv_->CollectQuantLayers(out);
    head_->CollectQuantLayers(out);
  }

  /// Exact bytes of the padded input tensor for one batch (Figure 6 top):
  /// batch * max_nodes * F * sizeof(float).
  size_t InputBytesPerBatch(size_t batch_size) const;
  size_t max_nodes() const { return max_nodes_; }

  const FullTreeModelConfig& config() const { return config_; }

 private:
  void AssembleBatch(const std::vector<size_t>& batch, TreeStructure* structure,
                     Tensor* features) const;
  /// AssembleBatch over borrowed trees instead of stored samples.
  void AssembleBorrowed(const std::vector<const TreeFeatures*>& samples,
                        size_t start, size_t end, TreeStructure* structure,
                        Tensor* features) const;
  const Tensor& ForwardBatch(const Tensor& features,
                             const TreeStructure& structure);

  FullTreeModelConfig config_;
  Rng rng_;
  std::unique_ptr<TreeConvStack> conv_;
  MaskedDynamicPooling pooling_;
  std::unique_ptr<DenseHead> head_;
  std::unique_ptr<AdamOptimizer> optimizer_;
  HuberLoss loss_;
  ExecutionContext* ctx_ = nullptr;

  std::vector<TreeFeatures> samples_;
  std::vector<float> targets_;
  size_t max_nodes_ = 0;
  bool finalized_ = false;
  // Per-batch workspaces reused across batches.
  Tensor features_ws_;  // [B, N, F]
  Tensor target_ws_;    // [B, 1]
  Tensor grad_ws_;      // [B, 1]
};

}  // namespace prestroid::core

#endif  // PRESTROID_CORE_FULL_TREE_MODEL_H_
