#ifndef PRESTROID_CORE_PIPELINE_H_
#define PRESTROID_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/featurizer.h"
#include "core/full_tree_model.h"
#include "core/label_transform.h"
#include "core/metrics.h"
#include "core/quant_profile.h"
#include "core/subtree_model.h"
#include "embed/word2vec.h"
#include "nn/trainer.h"
#include "plan/plan_limits.h"
#include "tensor/execution_context.h"
#include "workload/dataset.h"
#include "workload/trace.h"

namespace prestroid::core {

/// End-to-end Prestroid configuration (paper notation: Prestroid(N-K-P_f)
/// for sub-tree models, Full-P_f for the unpruned baseline).
struct PipelineConfig {
  /// Word2Vec settings; word2vec.dim is P_f.
  embed::Word2VecConfig word2vec;
  /// Sub-tree sampler: N (node limit) and C (convolution layers).
  subtree::SubtreeSamplerConfig sampler;
  /// K: sub-trees representing a query. Ignored for full-tree pipelines.
  size_t num_subtrees = 9;
  /// false -> Prestroid-Full over unpruned plans.
  bool use_subtrees = true;
  /// Decomposition strategy for sub-tree pipelines (Algorithm 1 by default;
  /// the naive options exist for the ablation study).
  subtree::PruningStrategy pruning = subtree::PruningStrategy::kAlgorithm1;
  std::vector<size_t> conv_channels = {512, 512, 512};
  std::vector<size_t> dense_units = {128, 64};
  float dropout = 0.1f;
  bool batch_norm = true;
  float learning_rate = 1e-4f;
  uint64_t seed = 1;
  /// Worker threads for featurization and the numeric kernels. 1 (the
  /// default) reproduces the historical single-threaded results bit-for-bit;
  /// 0 means all hardware threads. Runtime knob only — never serialized, so
  /// a loaded pipeline always starts at the serving default of 1.
  size_t threads = 1;
  /// Kernel backend for the numeric ops ("scalar" | "blocked"). Empty picks
  /// the process default (env PRESTROID_KERNEL, else blocked). "scalar" with
  /// threads=1 reproduces the pre-kernel-layer results bit-for-bit. Runtime
  /// knob only — never serialized.
  std::string kernel;
  /// Resource budget for plans entering FeaturizePlan/PredictPlan (the
  /// deployment path, which sees plans the trainer never vetted). Over-limit
  /// plans get kResourceExhausted before any recast/encode work. Runtime
  /// knob only — never serialized.
  plan::PlanLimits plan_limits;
};

/// Featurized encoding of one plan in exactly the form the model consumes:
/// K sub-trees for sub-tree pipelines, a single full tree otherwise. Copyable
/// so a serving cache can hand out shared encodings.
struct PlanFeatures {
  std::vector<TreeFeatures> trees;
};

/// The full Prestroid data-science pipeline of Figure 3: plan re-casting,
/// predicate Word2Vec, O-T-P encoding, sub-tree sampling, and the tree-CNN
/// cost model, assembled over one trace dataset.
///
/// Fit() performs all data-dependent preparation using only the training
/// partition (Word2Vec corpus, encoder vocabularies, OOV fallbacks); the
/// label transform is fitted over the whole corpus as in the paper. Every
/// record is then featurized so that model sample index == record index.
class PrestroidPipeline {
 public:
  /// Builds and featurizes the pipeline over `records`.
  static Result<std::unique_ptr<PrestroidPipeline>> Fit(
      const std::vector<workload::QueryRecord>& records,
      const std::vector<size_t>& train_indices, const PipelineConfig& config);

  /// Trains the model with early stopping (validation monitored in
  /// normalized space).
  TrainResult Train(const workload::DatasetSplits& splits,
                    const TrainConfig& train_config);

  /// Predicts total CPU minutes for the given record indices.
  std::vector<double> PredictMinutes(const std::vector<size_t>& indices);

  /// MSE in minutes^2 over the given records (paper Table 2 metric).
  double EvaluateMseMinutes(const std::vector<size_t>& indices);

  /// Predicts CPU minutes for a previously unseen plan (deployment path:
  /// new query -> EXPLAIN -> predict; exercises the OOV fallbacks).
  /// Equivalent to FeaturizePlan + a 1-element PredictFeaturized batch.
  Result<double> PredictPlan(const plan::PlanNode& plan);

  /// Featurizes a previously unseen plan into the model's input encoding
  /// (recast + OOV context + encode + sub-tree sampling). The result depends
  /// only on the plan and the fitted encoder state, so it is cacheable for
  /// recurring plans (see serve/plan_cache.h).
  Result<PlanFeatures> FeaturizePlan(const plan::PlanNode& plan);

  /// Predicts CPU minutes for a batch of featurized plans in one fused
  /// forward pass (eval mode: dropout off, batch-norm running statistics,
  /// per-tree pooling), so each row's prediction is independent of what else
  /// shares the batch — batched results match PredictPlan per element.
  std::vector<double> PredictFeaturized(
      const std::vector<const PlanFeatures*>& batch);

  // --- Low-precision inference (the resident kernel tier; DESIGN.md §5.8) --

  /// Freezes the model's eval-mode GEMM weights at `precision`. kFp32
  /// clears any resident state and restores the exact historical path.
  /// For kInt8, `profile` supplies the calibrated per-layer activation
  /// scales; null falls back to dynamic per-batch absmax. A profile whose
  /// layer count does not match the model is kInvalidArgument and leaves
  /// the pipeline at fp32. Training a frozen pipeline is forbidden (layer
  /// Backward CHECK-fails); call SetInferencePrecision(kFp32, null) first.
  Status SetInferencePrecision(Precision precision,
                               const QuantizationProfile* profile);
  Precision inference_precision() const { return inference_precision_; }

  /// One-pass post-training calibration: records every quantizable layer's
  /// GEMM-input range over fp32 eval forwards of `sample`, then resolves
  /// percentile-clipped symmetric scales (nn/quantize.h). The pipeline must
  /// be at fp32. The returned profile pairs with SetInferencePrecision and
  /// Save/LoadQuantizationProfile.
  Result<QuantizationProfile> CalibrateQuantization(
      const std::vector<const PlanFeatures*>& sample, double clip_percentile);

  /// Bytes of the model's GEMM weight operands as served at the active
  /// precision (resident layouts when frozen, fp32 otherwise) — the
  /// weight-memory term of the Fig 6-style serving footprint report.
  size_t InferenceWeightBytes();

  CostModel* model();
  /// The pipeline-owned execution context (thread pool + scratch arena +
  /// counters) bound to the model. Never null after Fit()/LoadFile().
  ExecutionContext* execution_context() { return exec_ctx_.get(); }
  const LabelTransform& label_transform() const { return transform_; }
  const embed::Word2Vec& word2vec() const { return *word2vec_; }
  const otp::OtpEncoder& encoder() const { return *encoder_; }
  const PipelineConfig& config() const { return config_; }
  /// Normalized targets of all records (index-aligned).
  const std::vector<float>& normalized_targets() const { return targets_; }
  const std::vector<double>& cpu_minutes() const { return cpu_minutes_; }

  /// Serializes the fitted pipeline — config, label transform, Word2Vec,
  /// encoder vocabularies, OOV fallback, and trained model weights — so a
  /// serving process can LoadFile() and PredictPlan() without retraining.
  /// (Implemented in core/pipeline_io.cc.)
  Status SaveFile(const std::string& path);

  /// Loads a pipeline saved by SaveFile. The result serves PredictPlan();
  /// it carries no training samples, so Train() is not available on it.
  static Result<std::unique_ptr<PrestroidPipeline>> LoadFile(
      const std::string& path);

  /// Human-readable model tag, e.g. "Prestroid (15-9-300)" or "Full-300".
  std::string ModelName() const;

  /// Exact padded input bytes per training batch (Figure 6 top).
  size_t InputBytesPerBatch(size_t batch_size) const;

 private:
  friend struct PipelineSerde;  // serialization internals (pipeline_io.cc)

  PrestroidPipeline() = default;

  PipelineConfig config_;
  LabelTransform transform_;
  std::unique_ptr<ExecutionContext> exec_ctx_;
  std::unique_ptr<embed::Word2Vec> word2vec_;
  std::unique_ptr<embed::PredicateEncoder> predicate_encoder_;
  std::unique_ptr<otp::OtpEncoder> encoder_;
  std::unique_ptr<Featurizer> featurizer_;
  std::unique_ptr<SubtreeModel> subtree_model_;
  std::unique_ptr<FullTreeModel> full_model_;
  std::vector<float> targets_;
  std::vector<double> cpu_minutes_;
  Precision inference_precision_ = Precision::kFp32;
};

}  // namespace prestroid::core

#endif  // PRESTROID_CORE_PIPELINE_H_
