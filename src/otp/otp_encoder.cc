#include "otp/otp_encoder.h"

#include <cstring>

#include "util/logging.h"

namespace prestroid::otp {

PredicateEmbedder::~PredicateEmbedder() = default;

OtpEncoder::OtpEncoder(const PredicateEmbedder* embedder)
    : embedder_(embedder) {
  PRESTROID_CHECK(embedder != nullptr);
}

void OtpEncoder::FitVocabulary(const std::vector<const OtpTree*>& corpus) {
  operator_ids_.clear();
  table_ids_.clear();
  for (const OtpTree* tree : corpus) {
    PRESTROID_CHECK(tree != nullptr && tree->root != nullptr);
    FlatOtpTree flat = Flatten(*tree);
    for (const OtpNode* node : flat.nodes) {
      if (node->type == OtpNodeType::kOperator) {
        operator_ids_.emplace(node->label, operator_ids_.size());
      } else if (node->type == OtpNodeType::kTable) {
        table_ids_.emplace(node->label, table_ids_.size());
      }
    }
  }
}

size_t OtpEncoder::feature_dim() const {
  // One extra slot per 1-hot block for unknown labels.
  return (operator_ids_.size() + 1) + embedder_->dim() + (table_ids_.size() + 1);
}

void OtpEncoder::EncodeNode(const OtpNode& node, float* out) const {
  const size_t opr_width = operator_ids_.size() + 1;
  const size_t pred_width = embedder_->dim();
  const size_t tbl_width = table_ids_.size() + 1;
  std::memset(out, 0, sizeof(float) * (opr_width + pred_width + tbl_width));
  switch (node.type) {
    case OtpNodeType::kOperator: {
      auto it = operator_ids_.find(node.label);
      // Last slot of the block is UNK.
      size_t slot = it != operator_ids_.end() ? it->second : opr_width - 1;
      out[slot] = 1.0f;
      break;
    }
    case OtpNodeType::kPredicate:
      PRESTROID_CHECK(node.predicate != nullptr);
      embedder_->Embed(*node.predicate, out + opr_width);
      break;
    case OtpNodeType::kTable: {
      auto it = table_ids_.find(node.label);
      size_t slot = it != table_ids_.end() ? it->second : tbl_width - 1;
      out[opr_width + pred_width + slot] = 1.0f;
      break;
    }
    case OtpNodeType::kNull:
      break;  // Ø encodes as all zero.
  }
}

Tensor OtpEncoder::EncodeTree(const FlatOtpTree& flat) const {
  const size_t dim = feature_dim();
  Tensor out({flat.size(), dim});
  for (size_t i = 0; i < flat.size(); ++i) {
    EncodeNode(*flat.nodes[i], out.data() + i * dim);
  }
  return out;
}

bool OtpEncoder::KnowsTable(const std::string& table) const {
  return table_ids_.count(table) > 0;
}

}  // namespace prestroid::otp
