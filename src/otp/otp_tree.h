#ifndef PRESTROID_OTP_OTP_TREE_H_
#define PRESTROID_OTP_OTP_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "plan/plan_node.h"
#include "util/status.h"

namespace prestroid::otp {

/// Node categories of the Operator-Table-Predicate encoding framework
/// (paper Section 4.1). kNull is the Ø padding node that completes the
/// binary tree.
enum class OtpNodeType { kOperator, kTable, kPredicate, kNull };

const char* OtpNodeTypeToString(OtpNodeType type);

struct OtpNode;
using OtpNodePtr = std::unique_ptr<OtpNode>;

/// One node of the re-cast binary tree.
struct OtpNode {
  OtpNode() = default;
  /// Iterative teardown — OTP trees mirror plan depth (one OPR level per
  /// plan level), so a deep chain plan would otherwise overflow the thread
  /// stack in the implicit recursive destructor.
  ~OtpNode();

  OtpNodeType type = OtpNodeType::kNull;
  /// kOperator: operator label (e.g. "Join:INNER", "Filter", "TableScan");
  /// kTable: table name; kPredicate: canonical predicate text.
  std::string label;
  /// Owned clone of the predicate expression (kPredicate only).
  sql::ExprPtr predicate;
  OtpNodePtr left;
  OtpNodePtr right;

  bool IsLeaf() const { return left == nullptr && right == nullptr; }
};

/// A fully re-cast O-T-P binary tree.
struct OtpTree {
  OtpNodePtr root;
  size_t node_count = 0;
  size_t max_depth = 0;
};

/// Applies the paper's four re-cast rules to a logical plan:
///   R1  non-join node  -> OPR, right child = PRED (its predicate) or Ø
///   R2  join node      -> OPR, both children untouched
///   R3  leaf (scan)    -> OPR, left child = TBL(table), right child = Ø
///   R4  binary-complete: add Ø to any node with fewer than 2 children
Result<OtpTree> RecastPlan(const plan::PlanNode& plan_root);

/// Flattened breadth-first view of an OtpTree used for tensorization.
/// Index 0 is the root; children indices are -1 for absent children (Ø nodes
/// ARE materialized and get their own slots).
struct FlatOtpTree {
  std::vector<const OtpNode*> nodes;  // BFS order
  std::vector<int> left;              // index into `nodes`, -1 if none
  std::vector<int> right;
  std::vector<int> depth;             // depth of each node (root = 0)

  size_t size() const { return nodes.size(); }
};

/// Flattens `tree` breadth-first.
FlatOtpTree Flatten(const OtpTree& tree);

/// Recomputes node count / max depth of an OtpNode subtree.
size_t CountNodes(const OtpNode& node);
size_t MaxDepth(const OtpNode& node);

}  // namespace prestroid::otp

#endif  // PRESTROID_OTP_OTP_TREE_H_
