#include "otp/otp_tree.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::otp {

OtpNode::~OtpNode() {
  std::vector<OtpNodePtr> pending;
  if (left != nullptr) pending.push_back(std::move(left));
  if (right != nullptr) pending.push_back(std::move(right));
  while (!pending.empty()) {
    OtpNodePtr node = std::move(pending.back());
    pending.pop_back();
    if (node->left != nullptr) pending.push_back(std::move(node->left));
    if (node->right != nullptr) pending.push_back(std::move(node->right));
  }
}

const char* OtpNodeTypeToString(OtpNodeType type) {
  switch (type) {
    case OtpNodeType::kOperator:
      return "OPR";
    case OtpNodeType::kTable:
      return "TBL";
    case OtpNodeType::kPredicate:
      return "PRED";
    case OtpNodeType::kNull:
      return "NULL";
  }
  return "?";
}

namespace {

OtpNodePtr MakeNullNode() {
  auto node = std::make_unique<OtpNode>();
  node->type = OtpNodeType::kNull;
  return node;
}

OtpNodePtr MakePredNode(const sql::Expr& predicate) {
  auto node = std::make_unique<OtpNode>();
  node->type = OtpNodeType::kPredicate;
  node->predicate = predicate.Clone();
  node->label = node->predicate->ToString();
  return node;
}

OtpNodePtr MakeTableNode(const std::string& table) {
  auto node = std::make_unique<OtpNode>();
  node->type = OtpNodeType::kTable;
  node->label = table;
  return node;
}

/// Operator label including the discriminating detail (join flavour /
/// exchange kind) so the 1-hot operator vocabulary distinguishes them.
std::string OperatorLabel(const plan::PlanNode& node) {
  switch (node.type) {
    case plan::PlanNodeType::kJoin:
      return StrFormat("Join:%s", sql::JoinTypeToString(node.join_type));
    case plan::PlanNodeType::kExchange:
      return StrFormat("Exchange:%s",
                       plan::ExchangeKindToString(node.exchange_kind));
    default:
      return plan::PlanNodeTypeToString(node.type);
  }
}

/// Iterative re-cast: each pending entry is a plan node plus the OtpNodePtr
/// slot its OPR node should land in. Slots point into heap-allocated parent
/// nodes, so they stay valid as the stack grows. On error, the partially
/// built tree tears down through the iterative ~OtpNode.
Result<OtpNodePtr> Recast(const plan::PlanNode& plan_root) {
  OtpNodePtr root;
  std::vector<std::pair<const plan::PlanNode*, OtpNodePtr*>> stack;
  stack.emplace_back(&plan_root, &root);
  while (!stack.empty()) {
    auto [plan_node, slot] = stack.back();
    stack.pop_back();
    auto node = std::make_unique<OtpNode>();
    node->type = OtpNodeType::kOperator;
    node->label = OperatorLabel(*plan_node);
    OtpNode* raw = node.get();
    *slot = std::move(node);

    if (plan_node->type == plan::PlanNodeType::kTableScan) {
      // R3: leaf -> OPR with left = TBL, right = Ø.
      raw->left = MakeTableNode(plan_node->table);
      raw->right = MakeNullNode();
      continue;
    }
    if (plan_node->type == plan::PlanNodeType::kJoin) {
      // R2: join children untouched.
      if (plan_node->children.size() != 2) {
        return Status::InvalidArgument("join node must have two children");
      }
      stack.emplace_back(plan_node->children[0].get(), &raw->left);
      stack.emplace_back(plan_node->children[1].get(), &raw->right);
      continue;
    }
    // R1: non-join node -> left child untouched, right child is the
    // predicate (or Ø when the operator carries none).
    if (plan_node->children.size() != 1) {
      return Status::InvalidArgument(
          StrFormat("operator %s must have one child",
                    plan::PlanNodeTypeToString(plan_node->type)));
    }
    stack.emplace_back(plan_node->children[0].get(), &raw->left);
    if (plan_node->predicate != nullptr) {
      raw->right = MakePredNode(*plan_node->predicate);
    } else {
      // R4 applied eagerly: binary-complete with Ø.
      raw->right = MakeNullNode();
    }
  }
  return root;
}

}  // namespace

size_t CountNodes(const OtpNode& node) {
  size_t count = 0;
  std::vector<const OtpNode*> stack{&node};
  while (!stack.empty()) {
    const OtpNode* current = stack.back();
    stack.pop_back();
    ++count;
    if (current->left != nullptr) stack.push_back(current->left.get());
    if (current->right != nullptr) stack.push_back(current->right.get());
  }
  return count;
}

size_t MaxDepth(const OtpNode& node) {
  size_t deepest = 0;
  std::vector<std::pair<const OtpNode*, size_t>> stack;
  stack.emplace_back(&node, 0);
  while (!stack.empty()) {
    auto [current, depth] = stack.back();
    stack.pop_back();
    deepest = std::max(deepest, depth);
    if (current->left != nullptr) {
      stack.emplace_back(current->left.get(), depth + 1);
    }
    if (current->right != nullptr) {
      stack.emplace_back(current->right.get(), depth + 1);
    }
  }
  return deepest;
}

Result<OtpTree> RecastPlan(const plan::PlanNode& plan_root) {
  OtpTree tree;
  PRESTROID_ASSIGN_OR_RETURN(tree.root, Recast(plan_root));
  tree.node_count = CountNodes(*tree.root);
  tree.max_depth = MaxDepth(*tree.root);
  return tree;
}

FlatOtpTree Flatten(const OtpTree& tree) {
  FlatOtpTree flat;
  PRESTROID_CHECK(tree.root != nullptr);
  std::deque<std::pair<const OtpNode*, int>> queue;
  queue.emplace_back(tree.root.get(), 0);
  // First pass: BFS order and depths.
  while (!queue.empty()) {
    auto [node, depth] = queue.front();
    queue.pop_front();
    flat.nodes.push_back(node);
    flat.depth.push_back(depth);
    if (node->left != nullptr) queue.emplace_back(node->left.get(), depth + 1);
    if (node->right != nullptr) queue.emplace_back(node->right.get(), depth + 1);
  }
  // Second pass: child indices via a pointer->index map built from order.
  flat.left.assign(flat.nodes.size(), -1);
  flat.right.assign(flat.nodes.size(), -1);
  // BFS guarantees children appear after parents; find indices linearly with
  // a small map.
  std::vector<std::pair<const OtpNode*, int>> index;
  index.reserve(flat.nodes.size());
  for (size_t i = 0; i < flat.nodes.size(); ++i) {
    index.emplace_back(flat.nodes[i], static_cast<int>(i));
  }
  std::sort(index.begin(), index.end());
  auto find_index = [&index](const OtpNode* node) -> int {
    auto it = std::lower_bound(
        index.begin(), index.end(), std::make_pair(node, 0),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    PRESTROID_CHECK(it != index.end() && it->first == node);
    return it->second;
  };
  for (size_t i = 0; i < flat.nodes.size(); ++i) {
    const OtpNode* node = flat.nodes[i];
    if (node->left != nullptr) flat.left[i] = find_index(node->left.get());
    if (node->right != nullptr) flat.right[i] = find_index(node->right.get());
  }
  return flat;
}

}  // namespace prestroid::otp
