#include "otp/otp_tree.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::otp {

const char* OtpNodeTypeToString(OtpNodeType type) {
  switch (type) {
    case OtpNodeType::kOperator:
      return "OPR";
    case OtpNodeType::kTable:
      return "TBL";
    case OtpNodeType::kPredicate:
      return "PRED";
    case OtpNodeType::kNull:
      return "NULL";
  }
  return "?";
}

namespace {

OtpNodePtr MakeNullNode() {
  auto node = std::make_unique<OtpNode>();
  node->type = OtpNodeType::kNull;
  return node;
}

OtpNodePtr MakePredNode(const sql::Expr& predicate) {
  auto node = std::make_unique<OtpNode>();
  node->type = OtpNodeType::kPredicate;
  node->predicate = predicate.Clone();
  node->label = node->predicate->ToString();
  return node;
}

OtpNodePtr MakeTableNode(const std::string& table) {
  auto node = std::make_unique<OtpNode>();
  node->type = OtpNodeType::kTable;
  node->label = table;
  return node;
}

/// Operator label including the discriminating detail (join flavour /
/// exchange kind) so the 1-hot operator vocabulary distinguishes them.
std::string OperatorLabel(const plan::PlanNode& node) {
  switch (node.type) {
    case plan::PlanNodeType::kJoin:
      return StrFormat("Join:%s", sql::JoinTypeToString(node.join_type));
    case plan::PlanNodeType::kExchange:
      return StrFormat("Exchange:%s",
                       plan::ExchangeKindToString(node.exchange_kind));
    default:
      return plan::PlanNodeTypeToString(node.type);
  }
}

Result<OtpNodePtr> Recast(const plan::PlanNode& plan_node) {
  auto node = std::make_unique<OtpNode>();
  node->type = OtpNodeType::kOperator;
  node->label = OperatorLabel(plan_node);

  if (plan_node.type == plan::PlanNodeType::kTableScan) {
    // R3: leaf -> OPR with left = TBL, right = Ø.
    node->left = MakeTableNode(plan_node.table);
    node->right = MakeNullNode();
    return node;
  }
  if (plan_node.type == plan::PlanNodeType::kJoin) {
    // R2: join children untouched.
    if (plan_node.children.size() != 2) {
      return Status::InvalidArgument("join node must have two children");
    }
    PRESTROID_ASSIGN_OR_RETURN(node->left, Recast(*plan_node.children[0]));
    PRESTROID_ASSIGN_OR_RETURN(node->right, Recast(*plan_node.children[1]));
    return node;
  }
  // R1: non-join node -> left child untouched, right child is the predicate
  // (or Ø when the operator carries none).
  if (plan_node.children.size() != 1) {
    return Status::InvalidArgument(
        StrFormat("operator %s must have one child",
                  plan::PlanNodeTypeToString(plan_node.type)));
  }
  PRESTROID_ASSIGN_OR_RETURN(node->left, Recast(*plan_node.children[0]));
  if (plan_node.predicate != nullptr) {
    node->right = MakePredNode(*plan_node.predicate);
  } else {
    // R4 applied eagerly: binary-complete with Ø.
    node->right = MakeNullNode();
  }
  return node;
}

}  // namespace

size_t CountNodes(const OtpNode& node) {
  size_t count = 1;
  if (node.left != nullptr) count += CountNodes(*node.left);
  if (node.right != nullptr) count += CountNodes(*node.right);
  return count;
}

size_t MaxDepth(const OtpNode& node) {
  size_t depth = 0;
  if (node.left != nullptr) depth = std::max(depth, MaxDepth(*node.left) + 1);
  if (node.right != nullptr) depth = std::max(depth, MaxDepth(*node.right) + 1);
  return depth;
}

Result<OtpTree> RecastPlan(const plan::PlanNode& plan_root) {
  OtpTree tree;
  PRESTROID_ASSIGN_OR_RETURN(tree.root, Recast(plan_root));
  tree.node_count = CountNodes(*tree.root);
  tree.max_depth = MaxDepth(*tree.root);
  return tree;
}

FlatOtpTree Flatten(const OtpTree& tree) {
  FlatOtpTree flat;
  PRESTROID_CHECK(tree.root != nullptr);
  std::deque<std::pair<const OtpNode*, int>> queue;
  queue.emplace_back(tree.root.get(), 0);
  // First pass: BFS order and depths.
  while (!queue.empty()) {
    auto [node, depth] = queue.front();
    queue.pop_front();
    flat.nodes.push_back(node);
    flat.depth.push_back(depth);
    if (node->left != nullptr) queue.emplace_back(node->left.get(), depth + 1);
    if (node->right != nullptr) queue.emplace_back(node->right.get(), depth + 1);
  }
  // Second pass: child indices via a pointer->index map built from order.
  flat.left.assign(flat.nodes.size(), -1);
  flat.right.assign(flat.nodes.size(), -1);
  // BFS guarantees children appear after parents; find indices linearly with
  // a small map.
  std::vector<std::pair<const OtpNode*, int>> index;
  index.reserve(flat.nodes.size());
  for (size_t i = 0; i < flat.nodes.size(); ++i) {
    index.emplace_back(flat.nodes[i], static_cast<int>(i));
  }
  std::sort(index.begin(), index.end());
  auto find_index = [&index](const OtpNode* node) -> int {
    auto it = std::lower_bound(
        index.begin(), index.end(), std::make_pair(node, 0),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    PRESTROID_CHECK(it != index.end() && it->first == node);
    return it->second;
  };
  for (size_t i = 0; i < flat.nodes.size(); ++i) {
    const OtpNode* node = flat.nodes[i];
    if (node->left != nullptr) flat.left[i] = find_index(node->left.get());
    if (node->right != nullptr) flat.right[i] = find_index(node->right.get());
  }
  return flat;
}

}  // namespace prestroid::otp
