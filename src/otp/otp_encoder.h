#ifndef PRESTROID_OTP_OTP_ENCODER_H_
#define PRESTROID_OTP_OTP_ENCODER_H_

#include <map>
#include <string>
#include <vector>

#include "otp/otp_tree.h"
#include "tensor/tensor.h"

namespace prestroid::otp {

/// Abstract predicate-embedding provider. Implemented by
/// embed::PredicateEncoder (Word2Vec + conjunction pooling); kept abstract
/// here so the O-T-P layer does not depend on the embedding subsystem.
class PredicateEmbedder {
 public:
  virtual ~PredicateEmbedder();
  /// Embedding width P_f.
  virtual size_t dim() const = 0;
  /// Writes the embedding of `predicate` into out[0..dim()).
  virtual void Embed(const sql::Expr& predicate, float* out) const = 0;
};

/// Encodes O-T-P nodes into the paper's [OPR 1-hot | PRED emb | TBL 1-hot]
/// node-feature layout. Operator and table vocabularies are fitted from a
/// training corpus; unseen labels at encode time map to a reserved UNK slot
/// (the paper's Table 1 churn study is exactly about these).
class OtpEncoder {
 public:
  explicit OtpEncoder(const PredicateEmbedder* embedder);

  /// Collects operator and table vocabularies from the corpus.
  void FitVocabulary(const std::vector<const OtpTree*>& corpus);

  /// Total node-feature width: |OPR|+1 + P_f + |TBL|+1.
  size_t feature_dim() const;
  size_t num_operators() const { return operator_ids_.size(); }
  size_t num_tables() const { return table_ids_.size(); }

  /// Encodes one node into out[0..feature_dim()). Ø nodes encode to zero.
  void EncodeNode(const OtpNode& node, float* out) const;

  /// Encodes a flattened tree into a [size, feature_dim] tensor.
  Tensor EncodeTree(const FlatOtpTree& flat) const;

  /// True if `table` was seen during FitVocabulary (Table 1 experiment).
  bool KnowsTable(const std::string& table) const;

  /// Vocabulary access for serialization.
  const std::map<std::string, size_t>& operator_ids() const {
    return operator_ids_;
  }
  const std::map<std::string, size_t>& table_ids() const { return table_ids_; }
  /// Rebuilds the vocabularies from serialized maps (model loading).
  void RestoreVocabulary(std::map<std::string, size_t> operators,
                         std::map<std::string, size_t> tables) {
    operator_ids_ = std::move(operators);
    table_ids_ = std::move(tables);
  }

 private:
  const PredicateEmbedder* embedder_;
  std::map<std::string, size_t> operator_ids_;
  std::map<std::string, size_t> table_ids_;
};

}  // namespace prestroid::otp

#endif  // PRESTROID_OTP_OTP_ENCODER_H_
