#include "cloud/cost_optimizer.h"

#include <algorithm>

#include "util/logging.h"

namespace prestroid::cloud {

BatchFootprint ShardFootprint(const BatchFootprint& footprint,
                              size_t num_gpus) {
  PRESTROID_CHECK_GT(num_gpus, 0u);
  BatchFootprint shard = footprint;
  shard.input_bytes = footprint.input_bytes / num_gpus;
  shard.activation_bytes = footprint.activation_bytes / num_gpus;
  // Parameters (and optimizer state) replicate on every GPU.
  return shard;
}

TrainingCostEstimate CheapestFeasibleTraining(
    const std::vector<AzureCluster>& clusters, size_t num_samples,
    size_t batch_size, const BatchFootprint& footprint,
    const ModelComputeProfile& profile, size_t epochs,
    const EpochTimeParams& epoch_params, const ScaleOutParams& scale_params) {
  TrainingCostEstimate best;
  for (const AzureCluster& cluster : clusters) {
    const BatchFootprint shard = ShardFootprint(footprint, cluster.num_gpus);
    if (!FitsOnGpu(shard, cluster.gpu)) continue;
    const double epoch_seconds = EstimateScaledEpochSeconds(
        num_samples, batch_size, footprint, profile, cluster.gpu,
        cluster.num_gpus, epoch_params, scale_params);
    const double hours =
        epoch_seconds * static_cast<double>(epochs) / 3600.0;
    const double usd = hours * cluster.hourly_usd;
    if (!best.feasible || usd < best.total_usd) {
      best.feasible = true;
      best.cluster_name = cluster.name;
      best.num_gpus = cluster.num_gpus;
      best.epoch_seconds = epoch_seconds;
      best.total_hours = hours;
      best.total_usd = usd;
    }
  }
  return best;
}

}  // namespace prestroid::cloud
