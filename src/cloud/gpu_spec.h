#ifndef PRESTROID_CLOUD_GPU_SPEC_H_
#define PRESTROID_CLOUD_GPU_SPEC_H_

#include <string>

namespace prestroid::cloud {

/// Performance envelope of one accelerator. Defaults model the NVIDIA Tesla
/// V100 (16 GB) used by the paper's Azure NC_V3 clusters.
struct GpuSpec {
  std::string name = "Tesla V100";
  double memory_gb = 16.0;
  /// Effective host-to-device transfer bandwidth (PCIe 3.0 x16, realistic).
  double pcie_gbps = 12.0;
  /// Sustained FP32 throughput.
  double tflops = 14.0;
  /// Device memory bandwidth.
  double mem_bandwidth_gbps = 900.0;
};

/// The V100 spec used across all cloud experiments.
GpuSpec TeslaV100();

}  // namespace prestroid::cloud

#endif  // PRESTROID_CLOUD_GPU_SPEC_H_
