#ifndef PRESTROID_CLOUD_COST_OPTIMIZER_H_
#define PRESTROID_CLOUD_COST_OPTIMIZER_H_

#include <string>
#include <vector>

#include "cloud/azure_catalog.h"
#include "cloud/scale_out_model.h"

namespace prestroid::cloud {

/// Outcome of a training-cost query for one model / batch size.
struct TrainingCostEstimate {
  bool feasible = false;
  std::string cluster_name;
  size_t num_gpus = 0;
  double epoch_seconds = 0.0;
  double total_hours = 0.0;
  double total_usd = 0.0;
};

/// Figure 7's procedure: among the given clusters, pick the LOWEST-COST one
/// that can hold the batch. On a multi-GPU cluster the batch is sharded
/// across GPUs (data parallelism), so a batch that OOMs one V100 may still
/// be feasible on NC12s/NC24s — at scale-out prices and penalties. Training
/// runs for `epochs` epochs over `num_samples` samples.
TrainingCostEstimate CheapestFeasibleTraining(
    const std::vector<AzureCluster>& clusters, size_t num_samples,
    size_t batch_size, const BatchFootprint& footprint,
    const ModelComputeProfile& profile, size_t epochs,
    const EpochTimeParams& epoch_params = {},
    const ScaleOutParams& scale_params = {});

/// Scales a batch footprint down to the per-GPU shard under data
/// parallelism (inputs and activations shard; parameters replicate).
BatchFootprint ShardFootprint(const BatchFootprint& footprint,
                              size_t num_gpus);

}  // namespace prestroid::cloud

#endif  // PRESTROID_CLOUD_COST_OPTIMIZER_H_
