#ifndef PRESTROID_CLOUD_EPOCH_TIME_MODEL_H_
#define PRESTROID_CLOUD_EPOCH_TIME_MODEL_H_

#include <cstddef>
#include <vector>

#include "cloud/footprint.h"
#include "cloud/gpu_spec.h"

namespace prestroid::cloud {

/// Compute profile of one model, independent of batch size.
struct ModelComputeProfile {
  /// Forward + backward FLOPs for one sample.
  double flops_per_sample = 0.0;
  /// Trainable parameter bytes (drives multi-GPU sync cost).
  size_t parameter_bytes = 0;
  /// Sub-trees processed sequentially per sample (the paper's tf_map
  /// inefficiency: K sequential convolution launches; 1 for other models).
  size_t sequential_trees = 1;
};

/// FLOPs of a tree-convolution model (forward + backward ~ 3x forward).
/// `nodes_padded` is the per-tree padded slot count.
ModelComputeProfile TreeModelComputeProfile(
    size_t trees_per_sample, size_t nodes_padded, size_t feature_dim,
    const std::vector<size_t>& conv_channels,
    const std::vector<size_t>& dense_units);

/// Tunable constants of the single-GPU epoch-time model.
struct EpochTimeParams {
  /// Fraction of peak TFLOPs actually sustained on these small kernels.
  double flops_utilization = 0.18;
  /// Fixed per-batch launch/dispatch latency (seconds).
  double per_batch_latency_s = 0.002;
  /// Extra latency per *sequentially launched* sub-tree convolution stack
  /// within a batch (the paper's tf_map inefficiency: each of the K
  /// sub-trees runs its 3-layer convolution as a separate sequential
  /// dispatch). Calibrated so Full-300 / (15-9-300) epoch time at batch 32
  /// reproduces the paper's 3.45x ratio.
  double per_tree_latency_s = 0.0085;
  /// Host->device transfer efficiency factor (<1 means slower than peak).
  double transfer_efficiency = 0.7;
};

/// Seconds for one training epoch on a single GPU: per-batch host->device
/// transfer of the padded input + compute at sustained FLOPs + launch
/// latencies (including the sequential sub-tree map penalty).
double EstimateEpochSeconds(size_t num_samples, size_t batch_size,
                            const BatchFootprint& footprint,
                            const ModelComputeProfile& profile,
                            const GpuSpec& gpu,
                            const EpochTimeParams& params = {});

/// Inference pass over `num_samples` at the given batch size (forward only,
/// ~1/3 of the training FLOPs, no optimizer state transfers).
double EstimateInferenceSeconds(size_t num_samples, size_t batch_size,
                                const BatchFootprint& footprint,
                                const ModelComputeProfile& profile,
                                const GpuSpec& gpu,
                                const EpochTimeParams& params = {});

}  // namespace prestroid::cloud

#endif  // PRESTROID_CLOUD_EPOCH_TIME_MODEL_H_
