#include "cloud/scale_out_model.h"

#include "util/logging.h"

namespace prestroid::cloud {

double EstimateScaledEpochSeconds(size_t num_samples, size_t batch_size,
                                  const BatchFootprint& footprint,
                                  const ModelComputeProfile& profile,
                                  const GpuSpec& gpu, size_t num_gpus,
                                  const EpochTimeParams& epoch_params,
                                  const ScaleOutParams& scale_params) {
  PRESTROID_CHECK_GT(num_gpus, 0u);
  const double single =
      EstimateEpochSeconds(num_samples, batch_size, footprint, profile, gpu,
                           epoch_params);
  if (num_gpus == 1) return single;

  const double n = static_cast<double>(num_gpus);
  // Amdahl: only (1 - serial_fraction) of the per-epoch work shards.
  const double parallel_time =
      single * (scale_params.serial_fraction +
                (1.0 - scale_params.serial_fraction) / n);

  // Parameter-server synchronization: each of the N workers pushes gradients
  // and pulls weights every batch, all through one server's NIC.
  const size_t num_batches = (num_samples + batch_size - 1) / batch_size;
  const double bytes_per_sync =
      2.0 * static_cast<double>(profile.parameter_bytes) * n;
  const double sync_per_batch =
      bytes_per_sync / (scale_params.network_gbps * 1e9) +
      scale_params.sync_latency_s * n;
  const double sync_time = static_cast<double>(num_batches) * sync_per_batch;

  return parallel_time + sync_time;
}

double ScaleOutSpeedup(size_t num_samples, size_t batch_size,
                       const BatchFootprint& footprint,
                       const ModelComputeProfile& profile, const GpuSpec& gpu,
                       size_t num_gpus, const EpochTimeParams& epoch_params,
                       const ScaleOutParams& scale_params) {
  const double single = EstimateEpochSeconds(num_samples, batch_size, footprint,
                                             profile, gpu, epoch_params);
  const double scaled =
      EstimateScaledEpochSeconds(num_samples, batch_size, footprint, profile,
                                 gpu, num_gpus, epoch_params, scale_params);
  return single / scaled;
}

}  // namespace prestroid::cloud
