#include "cloud/epoch_time_model.h"

#include <cmath>

#include "util/logging.h"

namespace prestroid::cloud {

ModelComputeProfile TreeModelComputeProfile(
    size_t trees_per_sample, size_t nodes_padded, size_t feature_dim,
    const std::vector<size_t>& conv_channels,
    const std::vector<size_t>& dense_units) {
  PRESTROID_CHECK(!conv_channels.empty());
  double forward_flops = 0.0;
  const double slots =
      static_cast<double>(trees_per_sample) * static_cast<double>(nodes_padded);
  double in = static_cast<double>(feature_dim);
  size_t params = 0;
  size_t prev = feature_dim;
  for (size_t out : conv_channels) {
    // Triangular kernel: 3 matmuls (self/left/right) of [in x out] per node.
    forward_flops += slots * 3.0 * 2.0 * in * static_cast<double>(out);
    params += 3 * prev * out + out;
    in = static_cast<double>(out);
    prev = out;
  }
  size_t head_in = trees_per_sample * conv_channels.back();
  for (size_t units : dense_units) {
    forward_flops += 2.0 * static_cast<double>(head_in) * units;
    params += head_in * units + units;
    head_in = units;
  }
  forward_flops += 2.0 * static_cast<double>(head_in);
  params += head_in + 1;

  ModelComputeProfile profile;
  // Backward is roughly 2x the forward work.
  profile.flops_per_sample = 3.0 * forward_flops;
  profile.parameter_bytes = params * sizeof(float);
  profile.sequential_trees = trees_per_sample;
  return profile;
}

namespace {

double BatchSeconds(size_t batch_size, const BatchFootprint& footprint,
                    const ModelComputeProfile& profile, const GpuSpec& gpu,
                    const EpochTimeParams& params, double flops_scale) {
  const double transfer_s =
      static_cast<double>(footprint.input_bytes) /
      (gpu.pcie_gbps * 1e9 * params.transfer_efficiency);
  const double compute_s =
      profile.flops_per_sample * static_cast<double>(batch_size) * flops_scale /
      (gpu.tflops * 1e12 * params.flops_utilization);
  const double launch_s =
      params.per_batch_latency_s +
      params.per_tree_latency_s *
          static_cast<double>(profile.sequential_trees);
  return transfer_s + compute_s + launch_s;
}

}  // namespace

double EstimateEpochSeconds(size_t num_samples, size_t batch_size,
                            const BatchFootprint& footprint,
                            const ModelComputeProfile& profile,
                            const GpuSpec& gpu, const EpochTimeParams& params) {
  PRESTROID_CHECK_GT(batch_size, 0u);
  const size_t num_batches = (num_samples + batch_size - 1) / batch_size;
  return static_cast<double>(num_batches) *
         BatchSeconds(batch_size, footprint, profile, gpu, params,
                      /*flops_scale=*/1.0);
}

double EstimateInferenceSeconds(size_t num_samples, size_t batch_size,
                                const BatchFootprint& footprint,
                                const ModelComputeProfile& profile,
                                const GpuSpec& gpu,
                                const EpochTimeParams& params) {
  PRESTROID_CHECK_GT(batch_size, 0u);
  const size_t num_batches = (num_samples + batch_size - 1) / batch_size;
  return static_cast<double>(num_batches) *
         BatchSeconds(batch_size, footprint, profile, gpu, params,
                      /*flops_scale=*/1.0 / 3.0);
}

}  // namespace prestroid::cloud
