#ifndef PRESTROID_CLOUD_AZURE_CATALOG_H_
#define PRESTROID_CLOUD_AZURE_CATALOG_H_

#include <string>
#include <vector>

#include "cloud/gpu_spec.h"

namespace prestroid::cloud {

/// One rentable GPU cluster tier.
struct AzureCluster {
  std::string name;
  size_t num_gpus = 1;
  double hourly_usd = 0.0;
  GpuSpec gpu;
};

/// The paper's Azure NC_V3 series: NC6s_V3 (1 GPU, $4.23/h), NC12s_V3
/// (2 GPUs, $8.47/h), NC24s_V3 (4 GPUs, $18.63/h) — note the super-linear
/// price step to 4 GPUs that drives the paper's "train on one GPU" advice.
std::vector<AzureCluster> AzureNcV3Clusters();

}  // namespace prestroid::cloud

#endif  // PRESTROID_CLOUD_AZURE_CATALOG_H_
