#ifndef PRESTROID_CLOUD_SCALE_OUT_MODEL_H_
#define PRESTROID_CLOUD_SCALE_OUT_MODEL_H_

#include <cstddef>

#include "cloud/epoch_time_model.h"

namespace prestroid::cloud {

/// Constants of the data-parallel (parameter-server) scale-out model of
/// Appendix B.1: weights are replicated, batches sharded, and every epoch
/// each worker pushes gradients to and pulls weights from a single
/// bandwidth-bottlenecked parameter server.
struct ScaleOutParams {
  /// Inter-GPU / network bandwidth available to the parameter server.
  double network_gbps = 8.0;
  /// Per-synchronization fixed latency, per worker (seconds).
  double sync_latency_s = 0.0008;
  /// Fraction of the per-batch work that cannot be parallelized
  /// (input pipeline, kernel launches) — Amdahl residue.
  double serial_fraction = 0.08;
};

/// Epoch seconds when training on `num_gpus` with data parallelism.
/// Reproduces the paper's Figure 9 penalties: speedups of ~1.6x/2.9x instead
/// of 2x/4x, worse for parameter-heavy models.
double EstimateScaledEpochSeconds(size_t num_samples, size_t batch_size,
                                  const BatchFootprint& footprint,
                                  const ModelComputeProfile& profile,
                                  const GpuSpec& gpu, size_t num_gpus,
                                  const EpochTimeParams& epoch_params = {},
                                  const ScaleOutParams& scale_params = {});

/// Observed speedup of `num_gpus` over single-GPU for the same setup.
double ScaleOutSpeedup(size_t num_samples, size_t batch_size,
                       const BatchFootprint& footprint,
                       const ModelComputeProfile& profile, const GpuSpec& gpu,
                       size_t num_gpus,
                       const EpochTimeParams& epoch_params = {},
                       const ScaleOutParams& scale_params = {});

}  // namespace prestroid::cloud

#endif  // PRESTROID_CLOUD_SCALE_OUT_MODEL_H_
