#include "cloud/footprint.h"

#include "util/logging.h"

namespace prestroid::cloud {

BatchFootprint TreeModelFootprint(size_t batch_size, size_t trees_per_sample,
                                  size_t nodes_padded, size_t feature_dim,
                                  const std::vector<size_t>& conv_channels,
                                  const std::vector<size_t>& dense_units) {
  PRESTROID_CHECK(!conv_channels.empty());
  BatchFootprint footprint;
  const size_t slots = batch_size * trees_per_sample * nodes_padded;
  footprint.input_bytes = slots * feature_dim * sizeof(float);

  // Forward activations retained for backprop, their gradients, and
  // framework workspace: roughly kActivationCopies live [slots, channels]
  // tensors per convolution layer during the backward pass.
  constexpr size_t kActivationCopies = 5;
  size_t activations = 0;
  for (size_t channels : conv_channels) {
    activations += kActivationCopies * slots * channels * sizeof(float);
  }
  // Pooled vector + dense activations.
  size_t pooled = batch_size * trees_per_sample * conv_channels.back();
  activations += pooled * sizeof(float);
  for (size_t units : dense_units) {
    activations += batch_size * units * sizeof(float);
  }
  footprint.activation_bytes = activations;

  // Parameters: 3 triangular weight matrices + bias per conv layer; dense
  // head on the flattened K * C vector.
  size_t params = 0;
  size_t in = feature_dim;
  for (size_t out : conv_channels) {
    params += 3 * in * out + out;
    in = out;
  }
  size_t head_in = trees_per_sample * conv_channels.back();
  for (size_t units : dense_units) {
    params += head_in * units + units;
    head_in = units;
  }
  params += head_in + 1;
  footprint.parameter_bytes = params * sizeof(float);
  return footprint;
}

BatchFootprint FlatModelFootprint(size_t batch_size,
                                  size_t input_floats_per_sample,
                                  size_t hidden_floats_per_sample,
                                  size_t num_parameters) {
  BatchFootprint footprint;
  footprint.input_bytes = batch_size * input_floats_per_sample * sizeof(float);
  footprint.activation_bytes =
      batch_size * hidden_floats_per_sample * sizeof(float);
  footprint.parameter_bytes = num_parameters * sizeof(float);
  return footprint;
}

bool FitsOnGpu(const BatchFootprint& footprint, const GpuSpec& gpu,
               double reserve_fraction) {
  const double available = gpu.memory_gb * 1e9 * (1.0 - reserve_fraction);
  return static_cast<double>(footprint.total_bytes()) <= available;
}

}  // namespace prestroid::cloud
