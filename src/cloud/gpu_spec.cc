#include "cloud/gpu_spec.h"

namespace prestroid::cloud {

GpuSpec TeslaV100() { return GpuSpec(); }

}  // namespace prestroid::cloud
