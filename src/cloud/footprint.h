#ifndef PRESTROID_CLOUD_FOOTPRINT_H_
#define PRESTROID_CLOUD_FOOTPRINT_H_

#include <cstddef>
#include <vector>

#include "cloud/gpu_spec.h"

namespace prestroid::cloud {

/// Byte accounting for one training batch: padded input tensor plus the
/// forward activations the GPU must retain to compute backprop gradients
/// (the paper's Section 3.2 memory argument).
struct BatchFootprint {
  size_t input_bytes = 0;
  size_t activation_bytes = 0;
  size_t parameter_bytes = 0;

  size_t total_bytes() const {
    // Adam keeps two moment tensors per parameter alongside the gradients.
    return input_bytes + activation_bytes + 4 * parameter_bytes;
  }
  double input_mb() const { return static_cast<double>(input_bytes) / 1e6; }
  double total_mb() const { return static_cast<double>(total_bytes()) / 1e6; }
};

/// Footprint of a tree-convolution model batch: `trees_per_sample` trees per
/// sample (K for sub-tree models, 1 for full trees), each padded to
/// `nodes_padded` slots of `feature_dim` floats, through `conv_channels`
/// convolutions and `dense_units` dense layers.
BatchFootprint TreeModelFootprint(size_t batch_size, size_t trees_per_sample,
                                  size_t nodes_padded, size_t feature_dim,
                                  const std::vector<size_t>& conv_channels,
                                  const std::vector<size_t>& dense_units);

/// Footprint of a generic flat-input model (M-MSCN, WCNN): padded input of
/// `input_floats_per_sample` plus `hidden_floats_per_sample` activations.
BatchFootprint FlatModelFootprint(size_t batch_size,
                                  size_t input_floats_per_sample,
                                  size_t hidden_floats_per_sample,
                                  size_t num_parameters);

/// Whether a batch fits into the GPU, leaving `reserve_fraction` of memory
/// for the framework/runtime.
bool FitsOnGpu(const BatchFootprint& footprint, const GpuSpec& gpu,
               double reserve_fraction = 0.15);

}  // namespace prestroid::cloud

#endif  // PRESTROID_CLOUD_FOOTPRINT_H_
