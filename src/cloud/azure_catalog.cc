#include "cloud/azure_catalog.h"

namespace prestroid::cloud {

std::vector<AzureCluster> AzureNcV3Clusters() {
  const GpuSpec v100 = TeslaV100();
  return {
      {"NC6s_V3", 1, 4.23, v100},
      {"NC12s_V3", 2, 8.47, v100},
      {"NC24s_V3", 4, 18.63, v100},
  };
}

}  // namespace prestroid::cloud
