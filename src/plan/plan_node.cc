#include "plan/plan_node.h"

#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::plan {

const char* PlanNodeTypeToString(PlanNodeType type) {
  switch (type) {
    case PlanNodeType::kTableScan:
      return "TableScan";
    case PlanNodeType::kFilter:
      return "Filter";
    case PlanNodeType::kProject:
      return "Project";
    case PlanNodeType::kJoin:
      return "Join";
    case PlanNodeType::kAggregate:
      return "Aggregate";
    case PlanNodeType::kSort:
      return "Sort";
    case PlanNodeType::kLimit:
      return "Limit";
    case PlanNodeType::kExchange:
      return "Exchange";
    case PlanNodeType::kDistinct:
      return "Distinct";
  }
  return "?";
}

const char* ExchangeKindToString(ExchangeKind kind) {
  switch (kind) {
    case ExchangeKind::kGather:
      return "GATHER";
    case ExchangeKind::kRepartition:
      return "REPARTITION";
    case ExchangeKind::kBroadcast:
      return "BROADCAST";
  }
  return "?";
}

PlanNode::~PlanNode() {
  // Detach the subtree into a flat worklist so unique_ptr teardown never
  // recurses more than one level, no matter how deep the plan is.
  std::vector<PlanNodePtr> pending;
  pending.reserve(children.size());
  for (PlanNodePtr& child : children) pending.push_back(std::move(child));
  children.clear();
  while (!pending.empty()) {
    PlanNodePtr node = std::move(pending.back());
    pending.pop_back();
    for (PlanNodePtr& child : node->children) {
      pending.push_back(std::move(child));
    }
    node->children.clear();
  }
}

namespace {

// Copies everything except children (those are wired up iteratively).
PlanNodePtr CloneShallow(const PlanNode& src) {
  auto copy = std::make_unique<PlanNode>();
  copy->type = src.type;
  copy->table = src.table;
  if (src.predicate != nullptr) copy->predicate = src.predicate->Clone();
  copy->expressions.reserve(src.expressions.size());
  for (const sql::ExprPtr& e : src.expressions) {
    copy->expressions.push_back(e->Clone());
  }
  copy->group_keys = src.group_keys;
  copy->sort_descending = src.sort_descending;
  copy->join_type = src.join_type;
  copy->exchange_kind = src.exchange_kind;
  copy->limit = src.limit;
  copy->cardinality = src.cardinality;
  return copy;
}

}  // namespace

PlanNodePtr PlanNode::Clone() const {
  PlanNodePtr root = CloneShallow(*this);
  std::vector<std::pair<const PlanNode*, PlanNode*>> stack;
  stack.emplace_back(this, root.get());
  while (!stack.empty()) {
    auto [src, dst] = stack.back();
    stack.pop_back();
    dst->children.reserve(src->children.size());
    for (const PlanNodePtr& child : src->children) {
      dst->children.push_back(CloneShallow(*child));
      stack.emplace_back(child.get(), dst->children.back().get());
    }
  }
  return root;
}

std::string PlanNode::Label() const {
  switch (type) {
    case PlanNodeType::kTableScan:
      return StrFormat("TableScan [%s]", table.c_str());
    case PlanNodeType::kFilter:
      return StrFormat("Filter [%s]", predicate->ToString().c_str());
    case PlanNodeType::kProject: {
      std::vector<std::string> parts;
      parts.reserve(expressions.size());
      for (const sql::ExprPtr& e : expressions) parts.push_back(e->ToString());
      return StrFormat("Project [%s]", Join(parts, "; ").c_str());
    }
    case PlanNodeType::kJoin:
      return StrFormat(
          "Join [%s%s%s]", sql::JoinTypeToString(join_type),
          predicate != nullptr ? ": " : "",
          predicate != nullptr ? predicate->ToString().c_str() : "");
    case PlanNodeType::kAggregate: {
      std::vector<std::string> aggs;
      aggs.reserve(expressions.size());
      for (const sql::ExprPtr& e : expressions) aggs.push_back(e->ToString());
      return StrFormat("Aggregate [keys: %s | aggs: %s]",
                       Join(group_keys, "; ").c_str(),
                       Join(aggs, "; ").c_str());
    }
    case PlanNodeType::kSort: {
      std::vector<std::string> keys;
      for (size_t i = 0; i < expressions.size(); ++i) {
        keys.push_back(expressions[i]->ToString() +
                       (i < sort_descending.size() && sort_descending[i]
                            ? " DESC"
                            : ""));
      }
      return StrFormat("Sort [%s]", Join(keys, "; ").c_str());
    }
    case PlanNodeType::kLimit:
      return StrFormat("Limit [%lld]", static_cast<long long>(limit));
    case PlanNodeType::kExchange:
      return StrFormat("Exchange [%s]", ExchangeKindToString(exchange_kind));
    case PlanNodeType::kDistinct:
      return "Distinct";
  }
  return "?";
}

PlanNodePtr MakeTableScan(std::string table) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kTableScan;
  node->table = std::move(table);
  return node;
}

PlanNodePtr MakeFilter(sql::ExprPtr predicate, PlanNodePtr child) {
  PRESTROID_CHECK(predicate != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kFilter;
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeProject(std::vector<sql::ExprPtr> expressions,
                        PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kProject;
  node->expressions = std::move(expressions);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeJoin(sql::JoinType type, sql::ExprPtr condition,
                     PlanNodePtr left, PlanNodePtr right) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kJoin;
  node->join_type = type;
  node->predicate = std::move(condition);
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

PlanNodePtr MakeAggregate(std::vector<std::string> group_keys,
                          std::vector<sql::ExprPtr> aggregates,
                          PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kAggregate;
  node->group_keys = std::move(group_keys);
  node->expressions = std::move(aggregates);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeSort(std::vector<sql::ExprPtr> keys,
                     std::vector<bool> descending, PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kSort;
  node->expressions = std::move(keys);
  node->sort_descending = std::move(descending);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeLimit(int64_t limit, PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kLimit;
  node->limit = limit;
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeExchange(ExchangeKind kind, PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kExchange;
  node->exchange_kind = kind;
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeDistinct(PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kDistinct;
  node->children.push_back(std::move(child));
  return node;
}

void VisitPlan(const PlanNode& root,
               const std::function<void(const PlanNode&)>& fn) {
  // Explicit pre-order stack; children pushed right-to-left so visitation
  // order matches the old recursive form exactly.
  std::vector<const PlanNode*> stack;
  stack.push_back(&root);
  while (!stack.empty()) {
    const PlanNode* node = stack.back();
    stack.pop_back();
    fn(*node);
    for (size_t i = node->children.size(); i > 0; --i) {
      stack.push_back(node->children[i - 1].get());
    }
  }
}

}  // namespace prestroid::plan
