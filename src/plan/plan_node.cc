#include "plan/plan_node.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::plan {

const char* PlanNodeTypeToString(PlanNodeType type) {
  switch (type) {
    case PlanNodeType::kTableScan:
      return "TableScan";
    case PlanNodeType::kFilter:
      return "Filter";
    case PlanNodeType::kProject:
      return "Project";
    case PlanNodeType::kJoin:
      return "Join";
    case PlanNodeType::kAggregate:
      return "Aggregate";
    case PlanNodeType::kSort:
      return "Sort";
    case PlanNodeType::kLimit:
      return "Limit";
    case PlanNodeType::kExchange:
      return "Exchange";
    case PlanNodeType::kDistinct:
      return "Distinct";
  }
  return "?";
}

const char* ExchangeKindToString(ExchangeKind kind) {
  switch (kind) {
    case ExchangeKind::kGather:
      return "GATHER";
    case ExchangeKind::kRepartition:
      return "REPARTITION";
    case ExchangeKind::kBroadcast:
      return "BROADCAST";
  }
  return "?";
}

PlanNodePtr PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->type = type;
  copy->table = table;
  if (predicate != nullptr) copy->predicate = predicate->Clone();
  copy->expressions.reserve(expressions.size());
  for (const sql::ExprPtr& e : expressions) copy->expressions.push_back(e->Clone());
  copy->group_keys = group_keys;
  copy->sort_descending = sort_descending;
  copy->join_type = join_type;
  copy->exchange_kind = exchange_kind;
  copy->limit = limit;
  copy->cardinality = cardinality;
  copy->children.reserve(children.size());
  for (const PlanNodePtr& child : children) copy->children.push_back(child->Clone());
  return copy;
}

std::string PlanNode::Label() const {
  switch (type) {
    case PlanNodeType::kTableScan:
      return StrFormat("TableScan [%s]", table.c_str());
    case PlanNodeType::kFilter:
      return StrFormat("Filter [%s]", predicate->ToString().c_str());
    case PlanNodeType::kProject: {
      std::vector<std::string> parts;
      parts.reserve(expressions.size());
      for (const sql::ExprPtr& e : expressions) parts.push_back(e->ToString());
      return StrFormat("Project [%s]", Join(parts, "; ").c_str());
    }
    case PlanNodeType::kJoin:
      return StrFormat(
          "Join [%s%s%s]", sql::JoinTypeToString(join_type),
          predicate != nullptr ? ": " : "",
          predicate != nullptr ? predicate->ToString().c_str() : "");
    case PlanNodeType::kAggregate: {
      std::vector<std::string> aggs;
      aggs.reserve(expressions.size());
      for (const sql::ExprPtr& e : expressions) aggs.push_back(e->ToString());
      return StrFormat("Aggregate [keys: %s | aggs: %s]",
                       Join(group_keys, "; ").c_str(),
                       Join(aggs, "; ").c_str());
    }
    case PlanNodeType::kSort: {
      std::vector<std::string> keys;
      for (size_t i = 0; i < expressions.size(); ++i) {
        keys.push_back(expressions[i]->ToString() +
                       (i < sort_descending.size() && sort_descending[i]
                            ? " DESC"
                            : ""));
      }
      return StrFormat("Sort [%s]", Join(keys, "; ").c_str());
    }
    case PlanNodeType::kLimit:
      return StrFormat("Limit [%lld]", static_cast<long long>(limit));
    case PlanNodeType::kExchange:
      return StrFormat("Exchange [%s]", ExchangeKindToString(exchange_kind));
    case PlanNodeType::kDistinct:
      return "Distinct";
  }
  return "?";
}

PlanNodePtr MakeTableScan(std::string table) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kTableScan;
  node->table = std::move(table);
  return node;
}

PlanNodePtr MakeFilter(sql::ExprPtr predicate, PlanNodePtr child) {
  PRESTROID_CHECK(predicate != nullptr);
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kFilter;
  node->predicate = std::move(predicate);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeProject(std::vector<sql::ExprPtr> expressions,
                        PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kProject;
  node->expressions = std::move(expressions);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeJoin(sql::JoinType type, sql::ExprPtr condition,
                     PlanNodePtr left, PlanNodePtr right) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kJoin;
  node->join_type = type;
  node->predicate = std::move(condition);
  node->children.push_back(std::move(left));
  node->children.push_back(std::move(right));
  return node;
}

PlanNodePtr MakeAggregate(std::vector<std::string> group_keys,
                          std::vector<sql::ExprPtr> aggregates,
                          PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kAggregate;
  node->group_keys = std::move(group_keys);
  node->expressions = std::move(aggregates);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeSort(std::vector<sql::ExprPtr> keys,
                     std::vector<bool> descending, PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kSort;
  node->expressions = std::move(keys);
  node->sort_descending = std::move(descending);
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeLimit(int64_t limit, PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kLimit;
  node->limit = limit;
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeExchange(ExchangeKind kind, PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kExchange;
  node->exchange_kind = kind;
  node->children.push_back(std::move(child));
  return node;
}

PlanNodePtr MakeDistinct(PlanNodePtr child) {
  auto node = std::make_unique<PlanNode>();
  node->type = PlanNodeType::kDistinct;
  node->children.push_back(std::move(child));
  return node;
}

void VisitPlan(const PlanNode& root,
               const std::function<void(const PlanNode&)>& fn) {
  fn(root);
  for (const PlanNodePtr& child : root.children) VisitPlan(*child, fn);
}

}  // namespace prestroid::plan
