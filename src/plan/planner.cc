#include "plan/planner.h"

#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid::plan {

namespace {

/// One relation in FROM scope: its visible name, plus either a base table or
/// an already-planned subquery.
struct Relation {
  std::string visible_name;
  std::string base_table;  // empty for subqueries
  PlanNodePtr subplan;     // set for subqueries
  /// Column names this relation can resolve (base-table schema or subquery
  /// output names).
  std::set<std::string> columns;
};

bool ExprHasAggregate(const sql::Expr& expr) {
  if (expr.kind == sql::ExprKind::kFuncCall) {
    const std::string upper = ToUpper(expr.name);
    if (upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
        upper == "MIN" || upper == "MAX") {
      return true;
    }
  }
  for (const sql::ExprPtr& child : expr.children) {
    if (ExprHasAggregate(*child)) return true;
  }
  return false;
}

}  // namespace

void CollectColumnRefs(const sql::Expr& expr,
                       std::vector<std::pair<std::string, std::string>>* refs) {
  if (expr.kind == sql::ExprKind::kColumn) {
    refs->emplace_back(expr.table, expr.name);
  }
  for (const sql::ExprPtr& child : expr.children) {
    CollectColumnRefs(*child, refs);
  }
}

std::vector<sql::ExprPtr> SplitConjuncts(const sql::Expr& predicate) {
  std::vector<sql::ExprPtr> out;
  if (predicate.kind == sql::ExprKind::kAnd) {
    for (const sql::ExprPtr& child : predicate.children) {
      for (sql::ExprPtr& part : SplitConjuncts(*child)) {
        out.push_back(std::move(part));
      }
    }
  } else {
    out.push_back(predicate.Clone());
  }
  return out;
}

Planner::Planner(const Catalog* catalog, PlannerOptions options)
    : catalog_(catalog), options_(options) {
  PRESTROID_CHECK(catalog != nullptr);
}

Result<PlanNodePtr> Planner::Plan(const sql::SelectStmt& stmt) const {
  if (stmt.items.empty()) {
    return Status::InvalidArgument("SELECT list is empty");
  }

  // 1. Bring every FROM relation into scope.
  std::vector<Relation> relations;
  auto add_relation = [&](const sql::TableRef& ref) -> Status {
    Relation rel;
    rel.visible_name = ref.VisibleName();
    if (ref.IsSubquery()) {
      auto sub = Plan(*ref.subquery);
      if (!sub.ok()) return sub.status();
      rel.subplan = std::move(sub).value();
      for (const sql::SelectItem& item : ref.subquery->items) {
        if (!item.alias.empty()) {
          rel.columns.insert(item.alias);
        } else if (item.expr->kind == sql::ExprKind::kColumn) {
          rel.columns.insert(item.expr->name);
        }
      }
    } else {
      auto table = catalog_->GetTable(ref.table);
      if (!table.ok()) return table.status();
      rel.base_table = ref.table;
      for (const ColumnDef& col : (*table)->columns) {
        rel.columns.insert(col.name);
      }
    }
    relations.push_back(std::move(rel));
    return Status::OK();
  };
  PRESTROID_RETURN_NOT_OK(add_relation(stmt.from));
  for (const sql::JoinClause& join : stmt.joins) {
    PRESTROID_RETURN_NOT_OK(add_relation(join.ref));
  }

  // Maps a column reference to the index of the relation that defines it.
  auto resolve = [&](const std::string& qualifier,
                     const std::string& column) -> Result<size_t> {
    if (!qualifier.empty()) {
      for (size_t i = 0; i < relations.size(); ++i) {
        if (relations[i].visible_name == qualifier) return i;
      }
      return Status::NotFound("unknown relation qualifier: " + qualifier);
    }
    for (size_t i = 0; i < relations.size(); ++i) {
      if (relations[i].columns.count(column) > 0) return i;
    }
    return Status::NotFound("cannot resolve column: " + column);
  };

  // Which relations does a predicate touch?
  auto referenced_relations = [&](const sql::Expr& expr) -> Result<std::set<size_t>> {
    std::vector<std::pair<std::string, std::string>> refs;
    CollectColumnRefs(expr, &refs);
    std::set<size_t> out;
    for (const auto& [qualifier, column] : refs) {
      if (column == "*") continue;
      auto idx = resolve(qualifier, column);
      if (!idx.ok()) return idx.status();
      out.insert(*idx);
    }
    return out;
  };

  // 2. Predicate pushdown: split WHERE into conjuncts, attach single-relation
  // conjuncts to their scan, keep the rest for the top of the join tree.
  std::vector<std::vector<sql::ExprPtr>> pushed(relations.size());
  std::vector<sql::ExprPtr> residual;
  if (stmt.where != nullptr) {
    for (sql::ExprPtr& conjunct : SplitConjuncts(*stmt.where)) {
      auto touched = referenced_relations(*conjunct);
      if (!touched.ok()) return touched.status();
      if (options_.predicate_pushdown && touched->size() == 1) {
        pushed[*touched->begin()].push_back(std::move(conjunct));
      } else {
        residual.push_back(std::move(conjunct));
      }
    }
  }

  // 3. Leaf plans: scan (or subplan) + pushed-down filters.
  std::vector<PlanNodePtr> leaves;
  for (size_t i = 0; i < relations.size(); ++i) {
    PlanNodePtr leaf = relations[i].subplan != nullptr
                           ? std::move(relations[i].subplan)
                           : MakeTableScan(relations[i].base_table);
    for (sql::ExprPtr& pred : pushed[i]) {
      leaf = MakeFilter(std::move(pred), std::move(leaf));
    }
    leaves.push_back(std::move(leaf));
  }

  // 4. Left-deep join tree in declared order.
  PlanNodePtr root = std::move(leaves[0]);
  for (size_t j = 0; j < stmt.joins.size(); ++j) {
    PlanNodePtr right = std::move(leaves[j + 1]);
    if (options_.insert_exchanges) {
      right = MakeExchange(ExchangeKind::kRepartition, std::move(right));
      root = MakeExchange(ExchangeKind::kRepartition, std::move(root));
    }
    sql::ExprPtr condition;
    if (stmt.joins[j].condition != nullptr) {
      condition = stmt.joins[j].condition->Clone();
    }
    root = MakeJoin(stmt.joins[j].type, std::move(condition), std::move(root),
                    std::move(right));
  }

  // 5. Residual (multi-relation) WHERE conjuncts above the join tree.
  for (sql::ExprPtr& pred : residual) {
    root = MakeFilter(std::move(pred), std::move(root));
  }

  // 6. Aggregation.
  bool has_aggregate = !stmt.group_by.empty();
  for (const sql::SelectItem& item : stmt.items) {
    if (ExprHasAggregate(*item.expr)) has_aggregate = true;
  }
  if (has_aggregate) {
    std::vector<std::string> keys;
    keys.reserve(stmt.group_by.size());
    for (const sql::ExprPtr& key : stmt.group_by) keys.push_back(key->ToString());
    std::vector<sql::ExprPtr> aggs;
    for (const sql::SelectItem& item : stmt.items) {
      if (ExprHasAggregate(*item.expr)) aggs.push_back(item.expr->Clone());
    }
    root = MakeAggregate(std::move(keys), std::move(aggs), std::move(root));
    if (stmt.having != nullptr) {
      root = MakeFilter(stmt.having->Clone(), std::move(root));
    }
  } else if (stmt.having != nullptr) {
    return Status::InvalidArgument("HAVING without aggregation");
  }

  // 7. Projection (omitted for a bare SELECT *).
  bool star_only = stmt.items.size() == 1 &&
                   stmt.items[0].expr->kind == sql::ExprKind::kStar;
  if (!star_only && !has_aggregate) {
    std::vector<sql::ExprPtr> exprs;
    exprs.reserve(stmt.items.size());
    for (const sql::SelectItem& item : stmt.items) {
      exprs.push_back(item.expr->Clone());
    }
    root = MakeProject(std::move(exprs), std::move(root));
  }
  if (stmt.distinct) root = MakeDistinct(std::move(root));

  // 8. Sort / Limit / final gather.
  if (!stmt.order_by.empty()) {
    std::vector<sql::ExprPtr> keys;
    std::vector<bool> desc;
    for (const sql::OrderItem& item : stmt.order_by) {
      keys.push_back(item.expr->Clone());
      desc.push_back(item.descending);
    }
    root = MakeSort(std::move(keys), std::move(desc), std::move(root));
  }
  if (stmt.limit.has_value()) root = MakeLimit(*stmt.limit, std::move(root));
  if (options_.insert_exchanges) {
    root = MakeExchange(ExchangeKind::kGather, std::move(root));
  }
  return root;
}

}  // namespace prestroid::plan
