#ifndef PRESTROID_PLAN_PLAN_TEXT_H_
#define PRESTROID_PLAN_PLAN_TEXT_H_

#include <string>

#include "plan/plan_limits.h"
#include "plan/plan_node.h"
#include "util/status.h"

namespace prestroid::plan {

/// Serializes a plan tree to an EXPLAIN-style indented text form, e.g.
///
///   - Exchange [GATHER]
///     - Aggregate [keys: region | aggs: COUNT(*)]
///       - Filter [(fare > 10)]
///         - TableScan [trips]
///
/// The format round-trips through ParsePlanText. This stands in for Presto's
/// `EXPLAIN <query>` output as the ingestion format of trace files.
std::string PlanToText(const PlanNode& root);

/// Parses the text produced by PlanToText back into a plan tree. Limits are
/// enforced *while* parsing — an over-budget input is rejected with
/// kResourceExhausted before its tree is materialized, and malformed input
/// (including a Limit payload that is not exactly one in-range integer)
/// yields kParseError/kInvalidArgument. Never aborts on hostile bytes.
Result<PlanNodePtr> ParsePlanText(const std::string& text);
Result<PlanNodePtr> ParsePlanText(const std::string& text,
                                  const PlanLimits& limits);

}  // namespace prestroid::plan

#endif  // PRESTROID_PLAN_PLAN_TEXT_H_
