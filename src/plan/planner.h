#ifndef PRESTROID_PLAN_PLANNER_H_
#define PRESTROID_PLAN_PLANNER_H_

#include <memory>

#include "plan/catalog.h"
#include "plan/plan_node.h"
#include "sql/ast.h"
#include "util/status.h"

namespace prestroid::plan {

/// Planner knobs. Defaults mimic a Presto-style distributed logical plan.
struct PlannerOptions {
  /// Push single-relation WHERE conjuncts below the join tree.
  bool predicate_pushdown = true;
  /// Insert Exchange nodes (repartition under joins, gather at the root),
  /// mirroring Presto plan fragments; disable for compact plans.
  bool insert_exchanges = true;
};

/// Translates parsed SELECT statements into logical-plan trees (the "EXPLAIN"
/// a query engine would produce, which Prestroid consumes). Left-deep join
/// trees follow the declared join order, like an un-reordered optimizer pass.
class Planner {
 public:
  Planner(const Catalog* catalog, PlannerOptions options = {});

  /// Builds a logical plan. Fails with NotFound for unknown tables/columns
  /// and InvalidArgument for unsupported statement shapes.
  Result<PlanNodePtr> Plan(const sql::SelectStmt& stmt) const;

 private:
  const Catalog* catalog_;
  PlannerOptions options_;
};

/// Splits a predicate into its top-level AND conjuncts (clones the parts).
std::vector<sql::ExprPtr> SplitConjuncts(const sql::Expr& predicate);

/// Collects the table qualifiers referenced by `expr` (empty string for
/// unqualified columns).
void CollectColumnRefs(const sql::Expr& expr,
                       std::vector<std::pair<std::string, std::string>>* refs);

}  // namespace prestroid::plan

#endif  // PRESTROID_PLAN_PLANNER_H_
