#ifndef PRESTROID_PLAN_PLAN_LIMITS_H_
#define PRESTROID_PLAN_PLAN_LIMITS_H_

#include <cstddef>

#include "plan/plan_node.h"
#include "util/status.h"

namespace prestroid::plan {

/// Resource budget one plan may consume on the ingestion path. Enforced
/// *during* parsing (plan_text.cc) so a hostile input is rejected before it
/// allocates, and re-checked by the serving front end before any plan
/// reaches the fingerprint/featurization machinery.
///
/// Limit overruns surface as kResourceExhausted ("well-formed but over
/// budget"); malformed payloads surface as kInvalidArgument/kParseError.
/// The defaults admit every plan the workload generators produce — and a
/// 100k-node chain — while bounding the worst-case memory of one plan to a
/// few hundred MB and the worst-case predicate parse to a few thousand
/// tokens.
struct PlanLimits {
  /// Maximum operator nodes in one plan tree.
  size_t max_nodes = 200000;
  /// Maximum root-to-leaf edge distance (chain plans hit this first). Depth
  /// is bounded by heap, not thread stack: every traversal in plan/, otp/
  /// and serve/ is iterative.
  size_t max_depth = 150000;
  /// Maximum lexer tokens in one predicate / expression payload.
  size_t max_predicate_tokens = 4096;
  /// Maximum parenthesis/operator nesting inside one predicate. Keeps the
  /// recursive-descent SQL parser's stack usage bounded.
  size_t max_predicate_depth = 200;
  /// Maximum bytes of one plan-text line (a single node's serialized form).
  size_t max_line_bytes = 1 << 16;
  /// Maximum total bytes of one plan's text form.
  size_t max_plan_bytes = 64 << 20;
};

/// Verifies an already-materialized plan tree against `limits` with an
/// iterative, early-exit walk (stops counting as soon as a limit is
/// exceeded, so a 10M-node plan costs O(max_nodes), not O(10M)). Returns
/// kResourceExhausted naming the violated limit, or OK.
Status CheckPlanLimits(const PlanNode& root, const PlanLimits& limits);

}  // namespace prestroid::plan

#endif  // PRESTROID_PLAN_PLAN_LIMITS_H_
