#include "plan/plan_stats.h"

#include <algorithm>
#include <utility>

namespace prestroid::plan {

PlanStats ComputePlanStats(const PlanNode& root) {
  // One iterative (node, depth) walk replaces the old VisitPlan pass plus a
  // recursive Depth() — stats run on hostile serving inputs, so traversal
  // depth must be heap-bounded, not thread-stack-bounded.
  PlanStats stats;
  std::vector<std::pair<const PlanNode*, size_t>> stack;
  stack.emplace_back(&root, 0);
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    ++stats.node_count;
    ++stats.per_type[node->type];
    if (node->type == PlanNodeType::kJoin) {
      ++stats.num_joins;
      if (node->predicate != nullptr) ++stats.num_predicates;
    }
    if (node->type == PlanNodeType::kFilter) ++stats.num_predicates;
    stats.max_depth = std::max(stats.max_depth, depth);
    for (const PlanNodePtr& child : node->children) {
      stack.emplace_back(child.get(), depth + 1);
    }
  }
  return stats;
}

size_t BalancedTreeNodeCount(size_t depth) {
  return (static_cast<size_t>(1) << (depth + 1)) - 1;
}

size_t SkewedTreeNodeCount(size_t depth) { return depth + 1; }

}  // namespace prestroid::plan
