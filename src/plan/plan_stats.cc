#include "plan/plan_stats.h"

#include <algorithm>

namespace prestroid::plan {

namespace {

size_t Depth(const PlanNode& node) {
  size_t deepest = 0;
  for (const PlanNodePtr& child : node.children) {
    deepest = std::max(deepest, Depth(*child) + 1);
  }
  return deepest;
}

}  // namespace

PlanStats ComputePlanStats(const PlanNode& root) {
  PlanStats stats;
  VisitPlan(root, [&stats](const PlanNode& node) {
    ++stats.node_count;
    ++stats.per_type[node.type];
    if (node.type == PlanNodeType::kJoin) {
      ++stats.num_joins;
      if (node.predicate != nullptr) ++stats.num_predicates;
    }
    if (node.type == PlanNodeType::kFilter) ++stats.num_predicates;
  });
  stats.max_depth = Depth(root);
  return stats;
}

size_t BalancedTreeNodeCount(size_t depth) {
  return (static_cast<size_t>(1) << (depth + 1)) - 1;
}

size_t SkewedTreeNodeCount(size_t depth) { return depth + 1; }

}  // namespace prestroid::plan
