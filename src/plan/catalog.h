#ifndef PRESTROID_PLAN_CATALOG_H_
#define PRESTROID_PLAN_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace prestroid::plan {

/// Column value domains used for selectivity estimation and predicate-literal
/// generation.
enum class ColumnType { kInt, kDouble, kString, kTimestamp };

const char* ColumnTypeToString(ColumnType type);

/// Schema + statistics for one column.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt;
  /// Number of distinct values; drives equality selectivity = 1/ndv.
  double num_distinct = 1000.0;
  /// Value range for numeric columns (range-predicate selectivity).
  double min_value = 0.0;
  double max_value = 1e6;
};

/// Schema + statistics for one table.
struct TableDef {
  std::string name;
  double row_count = 1e6;
  /// Average bytes per row (drives scan cost).
  double row_bytes = 128.0;
  std::vector<ColumnDef> columns;

  /// Returns nullptr if the column is not present.
  const ColumnDef* FindColumn(const std::string& column) const;
};

/// In-memory catalog of table definitions (the simulated data lake's
/// metastore). Owns all TableDefs; lookups return stable pointers.
class Catalog {
 public:
  /// Fails with AlreadyExists on duplicate table names.
  Status AddTable(TableDef table);

  /// Returns NotFound if absent.
  Result<const TableDef*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// Resolves an unqualified column against the given candidate tables,
  /// returning the first table that defines it (NotFound otherwise).
  Result<std::string> ResolveColumn(const std::string& column,
                                    const std::vector<std::string>& tables) const;

  size_t size() const { return tables_.size(); }
  std::vector<std::string> TableNames() const;

 private:
  std::map<std::string, TableDef> tables_;
};

}  // namespace prestroid::plan

#endif  // PRESTROID_PLAN_CATALOG_H_
