#ifndef PRESTROID_PLAN_PLAN_NODE_H_
#define PRESTROID_PLAN_PLAN_NODE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace prestroid::plan {

/// Logical-plan operator taxonomy, mirroring the node vocabulary a Presto
/// EXPLAIN emits for the query shapes the workload generators produce.
enum class PlanNodeType {
  kTableScan,   // leaf; `table` set
  kFilter,      // 1 child; `predicate` set
  kProject,     // 1 child; `expressions` set
  kJoin,        // 2 children; `join_type` + optional `predicate`
  kAggregate,   // 1 child; `group_keys` + `expressions` (aggregate calls)
  kSort,        // 1 child; `expressions` (+ sort_descending flags)
  kLimit,       // 1 child; `limit`
  kExchange,    // 1 child; data shuffle/gather stage (`exchange_kind`)
  kDistinct,    // 1 child
};

const char* PlanNodeTypeToString(PlanNodeType type);

/// Exchange flavours (Presto inserts these between plan fragments).
enum class ExchangeKind { kGather, kRepartition, kBroadcast };
const char* ExchangeKindToString(ExchangeKind kind);

struct PlanNode;
using PlanNodePtr = std::unique_ptr<PlanNode>;

/// One logical-plan operator. The tree is a strict hierarchy (each node owns
/// its children); a DAG is not needed for the query shapes in this repo.
struct PlanNode {
  PlanNode() = default;
  /// Iterative teardown: the implicit member-wise destructor recurses once
  /// per tree level, which overflows the thread stack on the deep chain
  /// plans the ingestion limits admit (up to ~150k levels).
  ~PlanNode();

  PlanNodeType type = PlanNodeType::kTableScan;
  std::vector<PlanNodePtr> children;

  std::string table;                       // kTableScan
  sql::ExprPtr predicate;                  // kFilter / kJoin condition
  std::vector<sql::ExprPtr> expressions;   // kProject / kAggregate / kSort
  std::vector<std::string> group_keys;     // kAggregate
  std::vector<bool> sort_descending;       // kSort, parallel to expressions
  sql::JoinType join_type = sql::JoinType::kInner;  // kJoin
  ExchangeKind exchange_kind = ExchangeKind::kGather;  // kExchange
  int64_t limit = -1;                      // kLimit

  /// Output-row estimate, populated by the cost model (0 = unset).
  double cardinality = 0.0;

  /// Deep copy of the subtree.
  PlanNodePtr Clone() const;

  /// Single-line description of this operator (without children), e.g.
  /// "Filter [a.x > 5]".
  std::string Label() const;
};

/// Factory helpers.
PlanNodePtr MakeTableScan(std::string table);
PlanNodePtr MakeFilter(sql::ExprPtr predicate, PlanNodePtr child);
PlanNodePtr MakeProject(std::vector<sql::ExprPtr> expressions, PlanNodePtr child);
PlanNodePtr MakeJoin(sql::JoinType type, sql::ExprPtr condition,
                     PlanNodePtr left, PlanNodePtr right);
PlanNodePtr MakeAggregate(std::vector<std::string> group_keys,
                          std::vector<sql::ExprPtr> aggregates, PlanNodePtr child);
PlanNodePtr MakeSort(std::vector<sql::ExprPtr> keys, std::vector<bool> descending,
                     PlanNodePtr child);
PlanNodePtr MakeLimit(int64_t limit, PlanNodePtr child);
PlanNodePtr MakeExchange(ExchangeKind kind, PlanNodePtr child);
PlanNodePtr MakeDistinct(PlanNodePtr child);

/// Visits every node pre-order.
void VisitPlan(const PlanNode& root,
               const std::function<void(const PlanNode&)>& fn);

}  // namespace prestroid::plan

#endif  // PRESTROID_PLAN_PLAN_NODE_H_
