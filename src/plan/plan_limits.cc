#include "plan/plan_limits.h"

#include <vector>

#include "util/string_util.h"

namespace prestroid::plan {

Status CheckPlanLimits(const PlanNode& root, const PlanLimits& limits) {
  // Iterative DFS carrying (node, depth); early-exits on the first
  // violation so the walk itself is bounded by the limits it enforces.
  std::vector<std::pair<const PlanNode*, size_t>> stack;
  stack.emplace_back(&root, 0);
  size_t nodes = 0;
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    if (++nodes > limits.max_nodes) {
      return Status::ResourceExhausted(
          StrFormat("plan exceeds node limit (%zu)", limits.max_nodes));
    }
    if (depth > limits.max_depth) {
      return Status::ResourceExhausted(
          StrFormat("plan exceeds depth limit (%zu)", limits.max_depth));
    }
    for (const PlanNodePtr& child : node->children) {
      stack.emplace_back(child.get(), depth + 1);
    }
  }
  return Status::OK();
}

}  // namespace prestroid::plan
