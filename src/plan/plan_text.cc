#include "plan/plan_text.h"

#include <sstream>
#include <utility>

#include "sql/parser.h"
#include "util/string_util.h"

namespace prestroid::plan {

namespace {

struct ParsedLine {
  int depth;
  std::string kind;     // e.g. "Filter"
  std::string payload;  // bracket contents, may be empty
};

Result<ParsedLine> ParseLine(const std::string& line,
                             const PlanLimits& limits) {
  if (line.size() > limits.max_line_bytes) {
    return Status::ResourceExhausted(
        StrFormat("plan line exceeds byte limit (%zu bytes > %zu)",
                  line.size(), limits.max_line_bytes));
  }
  size_t indent = 0;
  while (indent < line.size() && line[indent] == ' ') ++indent;
  if (indent % 2 != 0) {
    return Status::ParseError("odd indentation in plan text: " + line);
  }
  // The depth limit also bounds `indent / 2` before the narrowing cast below,
  // so a gigabyte of leading spaces cannot overflow the int depth.
  if (indent / 2 > limits.max_depth) {
    return Status::ResourceExhausted(
        StrFormat("plan exceeds depth limit (%zu)", limits.max_depth));
  }
  std::string_view rest = std::string_view(line).substr(indent);
  if (!StartsWith(rest, "- ")) {
    return Status::ParseError("expected '- ' bullet in plan text: " + line);
  }
  rest = rest.substr(2);
  ParsedLine out;
  out.depth = static_cast<int>(indent / 2);
  size_t bracket = rest.find(" [");
  if (bracket == std::string_view::npos) {
    out.kind = std::string(Trim(rest));
  } else {
    out.kind = std::string(rest.substr(0, bracket));
    if (!EndsWith(rest, "]")) {
      return Status::ParseError("missing ']' in plan text: " + line);
    }
    out.payload =
        std::string(rest.substr(bracket + 2, rest.size() - bracket - 3));
  }
  return out;
}

Result<PlanNodePtr> NodeFromLine(const ParsedLine& line,
                                 const PlanLimits& limits) {
  const sql::ParseLimits expr_limits{limits.max_predicate_tokens,
                                     limits.max_predicate_depth};
  auto node = std::make_unique<PlanNode>();
  const std::string& kind = line.kind;
  const std::string& payload = line.payload;
  if (kind == "TableScan") {
    node->type = PlanNodeType::kTableScan;
    node->table = payload;
  } else if (kind == "Filter") {
    node->type = PlanNodeType::kFilter;
    auto pred = sql::ParseExpression(payload, expr_limits);
    if (!pred.ok()) return pred.status();
    node->predicate = std::move(pred).value();
  } else if (kind == "Project") {
    node->type = PlanNodeType::kProject;
    for (const std::string& part : Split(payload, ';')) {
      std::string text(Trim(part));
      if (text.empty()) continue;
      auto expr = sql::ParseExpression(text, expr_limits);
      if (!expr.ok()) return expr.status();
      node->expressions.push_back(std::move(expr).value());
    }
  } else if (kind == "Join") {
    node->type = PlanNodeType::kJoin;
    std::string head = payload;
    std::string cond;
    size_t colon = payload.find(": ");
    if (colon != std::string::npos) {
      head = payload.substr(0, colon);
      cond = payload.substr(colon + 2);
    }
    if (head == "INNER") {
      node->join_type = sql::JoinType::kInner;
    } else if (head == "LEFT") {
      node->join_type = sql::JoinType::kLeft;
    } else if (head == "RIGHT") {
      node->join_type = sql::JoinType::kRight;
    } else if (head == "FULL") {
      node->join_type = sql::JoinType::kFull;
    } else if (head == "CROSS") {
      node->join_type = sql::JoinType::kCross;
    } else {
      return Status::ParseError("unknown join type: " + head);
    }
    if (!cond.empty()) {
      auto pred = sql::ParseExpression(cond, expr_limits);
      if (!pred.ok()) return pred.status();
      node->predicate = std::move(pred).value();
    }
  } else if (kind == "Aggregate") {
    node->type = PlanNodeType::kAggregate;
    size_t bar = payload.find(" | aggs: ");
    if (bar == std::string::npos || !StartsWith(payload, "keys: ")) {
      return Status::ParseError("malformed Aggregate payload: " + payload);
    }
    std::string keys = payload.substr(6, bar - 6);
    std::string aggs = payload.substr(bar + 9);
    for (const std::string& key : Split(keys, ';')) {
      std::string text(Trim(key));
      if (!text.empty()) node->group_keys.push_back(text);
    }
    for (const std::string& agg : Split(aggs, ';')) {
      std::string text(Trim(agg));
      if (text.empty()) continue;
      auto expr = sql::ParseExpression(text, expr_limits);
      if (!expr.ok()) return expr.status();
      node->expressions.push_back(std::move(expr).value());
    }
  } else if (kind == "Sort") {
    node->type = PlanNodeType::kSort;
    for (const std::string& part : Split(payload, ';')) {
      std::string text(Trim(part));
      if (text.empty()) continue;
      bool desc = false;
      if (EndsWith(text, " DESC")) {
        desc = true;
        text = text.substr(0, text.size() - 5);
      }
      auto expr = sql::ParseExpression(text, expr_limits);
      if (!expr.ok()) return expr.status();
      node->expressions.push_back(std::move(expr).value());
      node->sort_descending.push_back(desc);
    }
  } else if (kind == "Limit") {
    node->type = PlanNodeType::kLimit;
    // strtoll silently accepts trailing garbage and saturates on overflow;
    // require the payload to be exactly one in-range integer.
    if (!ParseInt64(payload, &node->limit)) {
      return Status::InvalidArgument("malformed Limit count: " + payload);
    }
  } else if (kind == "Exchange") {
    node->type = PlanNodeType::kExchange;
    if (payload == "GATHER") {
      node->exchange_kind = ExchangeKind::kGather;
    } else if (payload == "REPARTITION") {
      node->exchange_kind = ExchangeKind::kRepartition;
    } else if (payload == "BROADCAST") {
      node->exchange_kind = ExchangeKind::kBroadcast;
    } else {
      return Status::ParseError("unknown exchange kind: " + payload);
    }
  } else if (kind == "Distinct") {
    node->type = PlanNodeType::kDistinct;
  } else {
    return Status::ParseError("unknown plan node kind: " + kind);
  }
  return node;
}

}  // namespace

std::string PlanToText(const PlanNode& root) {
  std::ostringstream os;
  // Explicit pre-order stack: serialization must survive the same chain
  // depths parsing accepts.
  std::vector<std::pair<const PlanNode*, int>> stack;
  stack.emplace_back(&root, 0);
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    for (int i = 0; i < depth; ++i) os << "  ";
    os << "- " << node->Label() << "\n";
    for (size_t i = node->children.size(); i > 0; --i) {
      stack.emplace_back(node->children[i - 1].get(), depth + 1);
    }
  }
  return os.str();
}

Result<PlanNodePtr> ParsePlanText(const std::string& text) {
  return ParsePlanText(text, PlanLimits{});
}

Result<PlanNodePtr> ParsePlanText(const std::string& text,
                                  const PlanLimits& limits) {
  if (text.size() > limits.max_plan_bytes) {
    return Status::ResourceExhausted(
        StrFormat("plan text exceeds byte limit (%zu bytes > %zu)",
                  text.size(), limits.max_plan_bytes));
  }
  std::vector<ParsedLine> lines;
  for (const std::string& raw : Split(text, '\n')) {
    if (Trim(raw).empty()) continue;
    if (lines.size() >= limits.max_nodes) {
      return Status::ResourceExhausted(
          StrFormat("plan exceeds node limit (%zu)", limits.max_nodes));
    }
    auto line = ParseLine(raw, limits);
    if (!line.ok()) return line.status();
    lines.push_back(std::move(line).value());
  }
  if (lines.empty()) return Status::ParseError("empty plan text");
  if (lines[0].depth != 0) {
    return Status::ParseError("plan text must start at depth 0");
  }

  // Depth-indexed stack of the current path from the root.
  std::vector<PlanNode*> stack;
  auto root = NodeFromLine(lines[0], limits);
  if (!root.ok()) return root.status();
  PlanNodePtr root_node = std::move(root).value();
  stack.push_back(root_node.get());
  for (size_t i = 1; i < lines.size(); ++i) {
    const ParsedLine& line = lines[i];
    if (line.depth < 1 || static_cast<size_t>(line.depth) > stack.size()) {
      return Status::ParseError(
          StrFormat("bad indentation at plan line %zu", i));
    }
    stack.resize(static_cast<size_t>(line.depth));
    auto node = NodeFromLine(line, limits);
    if (!node.ok()) return node.status();
    PlanNode* parent = stack.back();
    parent->children.push_back(std::move(node).value());
    stack.push_back(parent->children.back().get());
  }
  return root_node;
}

}  // namespace prestroid::plan
