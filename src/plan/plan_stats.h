#ifndef PRESTROID_PLAN_PLAN_STATS_H_
#define PRESTROID_PLAN_PLAN_STATS_H_

#include <cstddef>
#include <map>
#include <string>

#include "plan/plan_node.h"

namespace prestroid::plan {

/// Shape statistics of a plan tree — the (node count, max depth) coordinates
/// plotted in the paper's Figure 2 and the long-tail histogram of Figure 8.
struct PlanStats {
  size_t node_count = 0;
  /// Largest root-to-leaf edge distance (a single node has depth 0).
  size_t max_depth = 0;
  std::map<PlanNodeType, size_t> per_type;
  size_t num_joins = 0;
  size_t num_predicates = 0;  // Filter nodes + join conditions
};

/// Computes shape statistics of `root`.
PlanStats ComputePlanStats(const PlanNode& root);

/// Node count of a perfectly balanced binary tree of the given depth
/// (2^(depth+1) - 1): the upper reference curve in Figure 2.
size_t BalancedTreeNodeCount(size_t depth);

/// Node count of a fully skewed (left-deep, single-child) tree of the given
/// depth (depth + 1): the lower reference curve in Figure 2.
size_t SkewedTreeNodeCount(size_t depth);

}  // namespace prestroid::plan

#endif  // PRESTROID_PLAN_PLAN_STATS_H_
