#include "plan/catalog.h"

#include "util/string_util.h"

namespace prestroid::plan {

const char* ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return "int";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
    case ColumnType::kTimestamp:
      return "timestamp";
  }
  return "?";
}

const ColumnDef* TableDef::FindColumn(const std::string& column) const {
  for (const ColumnDef& col : columns) {
    if (col.name == column) return &col;
  }
  return nullptr;
}

Status Catalog::AddTable(TableDef table) {
  if (tables_.count(table.name) > 0) {
    return Status::AlreadyExists("table already defined: " + table.name);
  }
  std::string name = table.name;
  tables_.emplace(std::move(name), std::move(table));
  return Status::OK();
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("unknown table: " + name);
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<std::string> Catalog::ResolveColumn(
    const std::string& column, const std::vector<std::string>& tables) const {
  for (const std::string& table_name : tables) {
    auto it = tables_.find(table_name);
    if (it == tables_.end()) continue;
    if (it->second.FindColumn(column) != nullptr) return table_name;
  }
  return Status::NotFound(
      StrFormat("column '%s' not found in any candidate table", column.c_str()));
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

}  // namespace prestroid::plan
