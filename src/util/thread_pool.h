#ifndef PRESTROID_UTIL_THREAD_POOL_H_
#define PRESTROID_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace prestroid {

/// Fixed-size worker pool built around one primitive: ParallelFor with
/// deterministic static partitioning.
///
/// A pool of size T keeps T-1 background workers; the calling thread always
/// executes the first chunk itself (and helps drain the queue afterwards), so
/// `ThreadPool(1)` spawns no threads and runs everything inline. The chunk
/// boundaries of ParallelFor depend only on (begin, end, grain, T) — never on
/// scheduling — which is what makes parallel reductions reproducible
/// run-to-run at a fixed thread count (see DESIGN.md, determinism contract).
class ThreadPool {
 public:
  /// num_threads == 0 picks the hardware concurrency.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes, including the calling thread.
  size_t num_threads() const { return workers_.size() + 1; }

  /// Computes the static partition of [begin, end) into at most
  /// num_threads() contiguous chunks of at least `grain` items each.
  /// Deterministic: depends only on the arguments and the pool size.
  std::vector<std::pair<size_t, size_t>> Partition(size_t begin, size_t end,
                                                   size_t grain) const;

  /// Runs fn(chunk_begin, chunk_end) over the static partition of
  /// [begin, end), blocking until every chunk finished. Chunks are disjoint
  /// and cover the range exactly once. The first exception thrown by any
  /// chunk is rethrown on the calling thread after all chunks complete.
  /// Nested calls (from inside a chunk) degrade to inline serial execution.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  static size_t HardwareConcurrency();

 private:
  void WorkerLoop();
  /// Pops and runs one queued task; returns false if the queue was empty.
  bool RunOneTask();

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace prestroid

#endif  // PRESTROID_UTIL_THREAD_POOL_H_
