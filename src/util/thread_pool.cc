#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "util/logging.h"

namespace prestroid {

namespace {

/// Depth guard: ParallelFor issued from inside a chunk (worker thread or the
/// caller executing its own chunk) must not deadlock waiting on the same
/// worker set, so nested calls run serially inline.
thread_local int tl_parallel_depth = 0;

/// Completion state shared by the chunks of one ParallelFor call.
struct CallState {
  std::atomic<size_t> remaining;
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;

  explicit CallState(size_t chunks) : remaining(chunks) {}

  void FinishOne() {
    if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(mu);
      done_cv.notify_all();
    }
  }

  void RecordError(std::exception_ptr eptr) {
    std::lock_guard<std::mutex> lock(mu);
    if (!error) error = std::move(eptr);
  }
};

}  // namespace

size_t ThreadPool::HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = HardwareConcurrency();
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  ++tl_parallel_depth;  // chunks on workers must not re-enter the pool
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::RunOneTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

std::vector<std::pair<size_t, size_t>> ThreadPool::Partition(
    size_t begin, size_t end, size_t grain) const {
  std::vector<std::pair<size_t, size_t>> chunks;
  if (end <= begin) return chunks;
  const size_t n = end - begin;
  const size_t g = std::max<size_t>(grain, 1);
  const size_t max_chunks = std::min(num_threads(), (n + g - 1) / g);
  const size_t chunk_size = (n + max_chunks - 1) / max_chunks;
  for (size_t lo = begin; lo < end; lo += chunk_size) {
    chunks.emplace_back(lo, std::min(end, lo + chunk_size));
  }
  return chunks;
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  std::vector<std::pair<size_t, size_t>> chunks = Partition(begin, end, grain);
  if (chunks.size() <= 1 || tl_parallel_depth > 0) {
    fn(begin, end);
    return;
  }

  auto state = std::make_shared<CallState>(chunks.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    PRESTROID_CHECK(!stop_);
    // Chunk 0 is reserved for the calling thread.
    for (size_t c = 1; c < chunks.size(); ++c) {
      const auto [lo, hi] = chunks[c];
      queue_.emplace_back([state, &fn, lo = lo, hi = hi] {
        try {
          fn(lo, hi);
        } catch (...) {
          state->RecordError(std::current_exception());
        }
        state->FinishOne();
      });
    }
  }
  work_cv_.notify_all();

  ++tl_parallel_depth;
  try {
    fn(chunks[0].first, chunks[0].second);
  } catch (...) {
    state->RecordError(std::current_exception());
  }
  state->FinishOne();
  // Help drain the queue (our chunks or those of a concurrent call), then
  // sleep until every chunk of this call has completed.
  while (state->remaining.load(std::memory_order_acquire) > 0) {
    if (!RunOneTask()) {
      std::unique_lock<std::mutex> lock(state->mu);
      state->done_cv.wait(lock, [&state] {
        return state->remaining.load(std::memory_order_acquire) == 0;
      });
    }
  }
  --tl_parallel_depth;

  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace prestroid
