#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace prestroid {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      return out;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    size_t start = i;
    while (i < input.size() && !std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  text = Trim(text);
  if (text.empty()) return false;
  size_t i = 0;
  bool negative = false;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    i = 1;
  }
  if (i == text.size()) return false;
  // Accumulate in unsigned space so the INT64_MIN magnitude is expressible.
  constexpr uint64_t kPositiveMax = static_cast<uint64_t>(INT64_MAX);
  const uint64_t bound = negative ? kPositiveMax + 1 : kPositiveMax;
  uint64_t value = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (bound - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  *out = negative ? static_cast<int64_t>(~value + 1)
                  : static_cast<int64_t>(value);
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace prestroid
