#include "util/fault_injection.h"

namespace prestroid {

FaultInjector& FaultInjector::Global() {
  static FaultInjector instance;
  return instance;
}

void FaultInjector::ArmFailure(FaultSite site, size_t trigger_after,
                               bool repeat) {
  SiteState& state = sites_[static_cast<size_t>(site)];
  state.armed = true;
  state.repeat = repeat;
  state.trigger_after = trigger_after;
  state.hit_count = 0;
  state.fired = 0;
}

void FaultInjector::ArmShortWrite(size_t max_bytes, size_t trigger_after) {
  ArmFailure(FaultSite::kArtifactWrite, trigger_after);
  short_write_bytes_ = max_bytes;
}

void FaultInjector::Reset() {
  for (SiteState& state : sites_) state = SiteState();
  short_write_bytes_ = static_cast<size_t>(-1);
}

bool FaultInjector::ShouldFail(FaultSite site) {
  SiteState& state = sites_[static_cast<size_t>(site)];
  if (!state.armed) return false;
  const size_t hit = state.hit_count++;
  if (hit < state.trigger_after) return false;
  if (!state.repeat && state.fired > 0) return false;
  ++state.fired;
  return true;
}

bool FaultInjector::armed(FaultSite site) const {
  return sites_[static_cast<size_t>(site)].armed;
}

size_t FaultInjector::hits(FaultSite site) const {
  return sites_[static_cast<size_t>(site)].hit_count;
}

}  // namespace prestroid
