#include "util/memory_tracker.h"

#include <cstdint>
#include <cstdlib>

#include "util/logging.h"

namespace prestroid {

ScratchArena::ScratchArena(MemoryTracker* tracker, size_t initial_block_bytes)
    : tracker_(tracker),
      next_block_bytes_(initial_block_bytes == 0 ? 1024
                                                 : initial_block_bytes) {}

ScratchArena::~ScratchArena() { Trim(); }

void* ScratchArena::Allocate(size_t bytes, size_t align) {
  PRESTROID_CHECK(align != 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  for (; active_block_ < blocks_.size(); ++active_block_) {
    Block& block = blocks_[active_block_];
    const size_t aligned = (block.offset + align - 1) & ~(align - 1);
    if (aligned + bytes <= block.size) {
      block.offset = aligned + bytes;
      used_bytes_ += bytes;
      if (used_bytes_ > peak_used_bytes_) peak_used_bytes_ = used_bytes_;
      return block.data + aligned;
    }
  }
  Block* block = GrowFor(bytes + align);
  const size_t aligned =
      (reinterpret_cast<uintptr_t>(block->data) + align - 1) & ~(align - 1);
  const size_t start = aligned - reinterpret_cast<uintptr_t>(block->data);
  block->offset = start + bytes;
  used_bytes_ += bytes;
  if (used_bytes_ > peak_used_bytes_) peak_used_bytes_ = used_bytes_;
  return block->data + start;
}

ScratchArena::Block* ScratchArena::GrowFor(size_t bytes) {
  size_t size = next_block_bytes_;
  while (size < bytes) size *= 2;
  next_block_bytes_ = size * 2;
  char* data = static_cast<char*>(std::malloc(size));
  PRESTROID_CHECK(data != nullptr);
  if (tracker_ != nullptr) tracker_->Charge(size);
  capacity_bytes_ += size;
  blocks_.push_back(Block{data, size, 0});
  active_block_ = blocks_.size() - 1;
  return &blocks_.back();
}

void ScratchArena::Reset() {
  for (Block& block : blocks_) block.offset = 0;
  active_block_ = 0;
  used_bytes_ = 0;
}

void ScratchArena::Trim() {
  for (Block& block : blocks_) std::free(block.data);
  if (tracker_ != nullptr) tracker_->Release(capacity_bytes_);
  blocks_.clear();
  active_block_ = 0;
  capacity_bytes_ = 0;
  used_bytes_ = 0;
}

}  // namespace prestroid
