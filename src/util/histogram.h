#ifndef PRESTROID_UTIL_HISTOGRAM_H_
#define PRESTROID_UTIL_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace prestroid {

/// Point-in-time cumulative view of a LatencyHistogram, shaped for the
/// Prometheus histogram exposition: `cumulative_counts[i]` is the number of
/// samples <= `upper_bounds[i]` (the `le` label), bounds are strictly
/// increasing, the final bound is +inf, and the final cumulative count
/// equals `count`. Exact — built from the recorded buckets, never
/// reconstructed from percentiles.
struct HistogramSnapshot {
  std::vector<double> upper_bounds;        // last entry is +inf
  std::vector<uint64_t> cumulative_counts; // monotone non-decreasing
  uint64_t count = 0;
  double sum = 0.0;
};

/// Fixed log-spaced latency histogram.
///
/// Buckets are compile-time constants — `kBucketsPerDecade` geometric buckets
/// per decade spanning [kMinValue, kMaxValue), plus one underflow and one
/// overflow bucket — so two histograms recorded on different threads can be
/// merged with a plain element-wise add and no coordination. Values are
/// unit-agnostic; serving code records milliseconds.
///
/// Not thread-safe: each worker owns one instance and the owner merges them
/// (the intended sharding pattern for per-thread latency accounting).
class LatencyHistogram {
 public:
  /// Bucket geometry: 8 buckets per decade over [1e-3, 1e5) — 1 microsecond
  /// to 100 seconds when values are milliseconds. Latencies outside the span
  /// land in the underflow/overflow buckets and still count toward
  /// percentiles (clamped to the span edge).
  static constexpr double kMinValue = 1e-3;
  static constexpr double kMaxValue = 1e5;
  static constexpr size_t kBucketsPerDecade = 8;
  static constexpr size_t kDecades = 8;
  static constexpr size_t kNumBuckets = kBucketsPerDecade * kDecades + 2;

  void Record(double value) {
    ++buckets_[BucketIndex(value)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  /// Element-wise accumulation of `other` into this histogram.
  void Merge(const LatencyHistogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  void Reset() { *this = LatencyHistogram(); }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Value at percentile `p` in [0, 100]: the geometric midpoint of the
  /// bucket containing the p-th ranked sample, clamped to the observed
  /// min/max so tiny sample counts do not over-report bucket width. Returns
  /// 0 for an empty histogram.
  double Percentile(double p) const {
    if (count_ == 0) return 0.0;
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the target sample (1-based, ceil), per the usual
    // nearest-rank definition.
    const uint64_t rank = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::ceil(p / 100.0 * static_cast<double>(count_))));
    uint64_t seen = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= rank) {
        return std::clamp(BucketMidpoint(i), min_, max_);
      }
    }
    return max_;
  }

  uint64_t bucket_count(size_t i) const { return buckets_[i]; }

  /// Cumulative-bucket snapshot (see HistogramSnapshot). Every bucket is
  /// emitted — including the underflow bucket (upper bound kMinValue) and
  /// the overflow bucket (upper bound +inf) — so the exported histogram
  /// accounts for every recorded sample.
  HistogramSnapshot CumulativeSnapshot() const {
    HistogramSnapshot snapshot;
    snapshot.upper_bounds.reserve(kNumBuckets);
    snapshot.cumulative_counts.reserve(kNumBuckets);
    uint64_t running = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      running += buckets_[i];
      snapshot.upper_bounds.push_back(BucketUpperBound(i));
      snapshot.cumulative_counts.push_back(running);
    }
    snapshot.count = count_;
    snapshot.sum = sum_;
    return snapshot;
  }

  /// [lower, upper) bounds of bucket `i` (underflow: [0, kMinValue);
  /// overflow: [kMaxValue, inf)).
  static double BucketLowerBound(size_t i) {
    if (i == 0) return 0.0;
    return kMinValue * std::pow(10.0, static_cast<double>(i - 1) /
                                          static_cast<double>(kBucketsPerDecade));
  }
  static double BucketUpperBound(size_t i) {
    if (i + 1 >= kNumBuckets) return std::numeric_limits<double>::infinity();
    return BucketLowerBound(i + 1);
  }

 private:
  static size_t BucketIndex(double value) {
    if (!(value >= kMinValue)) return 0;  // underflow (also NaN)
    if (value >= kMaxValue) return kNumBuckets - 1;
    const double decades = std::log10(value / kMinValue);
    size_t idx = 1 + static_cast<size_t>(decades *
                                         static_cast<double>(kBucketsPerDecade));
    return std::min(idx, kNumBuckets - 2);
  }

  static double BucketMidpoint(size_t i) {
    const double lo = BucketLowerBound(i);
    if (i == 0) return kMinValue / 2.0;
    if (i + 1 >= kNumBuckets) return kMaxValue;
    return std::sqrt(lo * BucketUpperBound(i));  // geometric midpoint
  }

  std::array<uint64_t, kNumBuckets> buckets_ = {};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace prestroid

#endif  // PRESTROID_UTIL_HISTOGRAM_H_
