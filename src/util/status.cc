#include "util/status.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace prestroid {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDataCorruption:
      return "DataCorruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

namespace {

/// errno -> StatusCode. Network errnos get retryable categories so callers
/// can branch on code() instead of re-parsing errno out of the message; the
/// historical default for everything else remains kIoError.
StatusCode CodeForErrno(int errno_value) {
  switch (errno_value) {
    case ECONNRESET:
    case EPIPE:
    case ECONNREFUSED:
    case ENOTCONN:
      return StatusCode::kUnavailable;
    case EAGAIN:
#if EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
      return StatusCode::kResourceExhausted;
    case EADDRINUSE:
      return StatusCode::kAlreadyExists;
    default:
      return StatusCode::kIoError;
  }
}

}  // namespace

Status Status::FromErrno(const std::string& context, int errno_value) {
  std::string message = context;
  message += ": ";
  message += std::strerror(errno_value);
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), " [errno %d]", errno_value);
  message += suffix;
  return Status(CodeForErrno(errno_value), std::move(message));
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(message)});
  }
}

Status::Status(const Status& other) {
  if (other.state_ != nullptr) {
    state_ = std::make_unique<State>(*other.state_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ == nullptr ? nullptr
                                     : std::make_unique<State>(*other.state_);
  }
  return *this;
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return ok() ? kEmpty : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(state_->code);
  result += ": ";
  result += state_->message;
  return result;
}

namespace internal {

void DieOnError(const Status& status) {
  std::fprintf(stderr, "FATAL: ValueOrDie on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace prestroid
