#ifndef PRESTROID_UTIL_RANDOM_H_
#define PRESTROID_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "util/status.h"

namespace prestroid {

/// Deterministic, fast PRNG (xoshiro256**). All stochastic behaviour in the
/// library flows through an explicitly-seeded Rng so experiments are exactly
/// reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Gaussian();
  double Gaussian(double mean, double stddev);

  /// Log-normal with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma);

  /// Pareto-distributed value with scale x_m and shape alpha (heavy tail).
  double Pareto(double x_m, double alpha);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent s (rank 0 most likely).
  /// Uses an O(1) rejection sampler after O(n)-free harmonic approximation.
  size_t Zipf(size_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = NextUint64(i + 1);
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Derives an independent child generator (for per-worker determinism).
  Rng Fork();

  /// Writes the full generator state (xoshiro words + Gaussian cache) as one
  /// text record, so training checkpoints can resume the exact stream.
  void SerializeState(std::ostream& os) const;
  /// Restores a state written by SerializeState. ParseError on malformed
  /// input; the generator is unchanged on failure.
  Status DeserializeState(std::istream& is);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace prestroid

#endif  // PRESTROID_UTIL_RANDOM_H_
