#ifndef PRESTROID_UTIL_FAULT_INJECTION_H_
#define PRESTROID_UTIL_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>

namespace prestroid {

/// Places in the library instrumented for deterministic fault injection.
/// Production code asks `FaultInjector::Global().ShouldFail(site)` at each
/// site; with nothing armed every query is a cheap no-op returning false.
enum class FaultSite {
  /// One write(2) chunk inside AtomicWriteFile. Arming a short write here
  /// truncates the chunk; arming a failure makes the write return EIO.
  kArtifactWrite = 0,
  /// The fsync before the atomic rename.
  kArtifactSync,
  /// The final rename(2) that publishes the artifact.
  kArtifactRename,
  /// One epoch's training loss inside TrainWithEarlyStopping. Arming a
  /// failure here replaces the epoch loss with NaN (simulates divergence).
  kTrainEpochLoss,
  /// One syscall inside artifact read/write (open/read/write). Arming a
  /// failure here makes that syscall report EINTR, exercising the bounded
  /// retry-with-backoff path; arming with repeat exhausts the retry budget.
  kArtifactEintr,
  /// The critical section of ServingRuntime::SwapPipeline. Arming a failure
  /// here aborts the swap before any state is touched (simulates a crash
  /// mid-swap): the previously active model, feature cache, and generation
  /// are all left intact.
  kModelSwap,
  /// The connect(2) performed by net::FaultConnectTcp (used by HttpClient).
  /// Arming a failure here refuses the connection (ECONNREFUSED) without
  /// ever dialing the peer.
  kNetConnect,
  /// One send(2) inside net::FaultSend. What happens when the fault fires is
  /// chosen by net::NetFaultOptions::send_mode (mid-stream RST, short write).
  kNetSend,
  /// One recv(2) inside net::FaultRecv. What happens when the fault fires is
  /// chosen by net::NetFaultOptions::recv_mode (RST, truncated response,
  /// clamped partial read, byte-level delay).
  kNetRecv,
};

inline constexpr size_t kNumFaultSites = 9;

/// Deterministic, test-driven fault injector (singleton). Each site keeps a
/// hit counter; a site armed with `trigger_after` fires on the
/// (trigger_after+1)-th hit and, when `repeat` is set, on every hit after.
///
/// Not thread-safe by design: the harness is driven from single-threaded
/// tests, and keeping it lock-free guarantees zero cost on hot paths when
/// disarmed.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms `site` to fail once its hit counter passes `trigger_after`.
  void ArmFailure(FaultSite site, size_t trigger_after = 0,
                  bool repeat = false);

  /// Arms kArtifactWrite to truncate each affected write to `max_bytes`.
  /// Combined with ArmFailure semantics: the short write happens at the
  /// armed trigger point.
  void ArmShortWrite(size_t max_bytes, size_t trigger_after = 0);

  /// Disarms every site and zeroes all hit counters.
  void Reset();

  /// Called by instrumented production code. Counts one hit at `site` and
  /// returns true when an armed fault fires.
  bool ShouldFail(FaultSite site);

  /// Bytes to actually write when a kArtifactWrite fault fires as a short
  /// write instead of an outright failure; SIZE_MAX means "fail, don't
  /// truncate".
  size_t short_write_bytes() const { return short_write_bytes_; }

  bool armed(FaultSite site) const;
  size_t hits(FaultSite site) const;

 private:
  FaultInjector() = default;

  struct SiteState {
    bool armed = false;
    bool repeat = false;
    size_t trigger_after = 0;
    size_t hit_count = 0;
    size_t fired = 0;
  };

  SiteState sites_[kNumFaultSites];
  size_t short_write_bytes_ = static_cast<size_t>(-1);
};

/// RAII guard for tests: resets the global injector on construction and
/// destruction so faults never leak across test cases.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() { FaultInjector::Global().Reset(); }
  ~ScopedFaultInjection() { FaultInjector::Global().Reset(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace prestroid

#endif  // PRESTROID_UTIL_FAULT_INJECTION_H_
