#ifndef PRESTROID_UTIL_ARTIFACT_IO_H_
#define PRESTROID_UTIL_ARTIFACT_IO_H_

#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace prestroid {

/// Crash-safe artifact container used for every on-disk model/checkpoint
/// file. Two layers:
///
///  1. AtomicWriteFile — all-or-nothing publication: write a sibling temp
///     file, fsync it, then rename(2) over the destination. A crash at any
///     point leaves either the complete old file or the complete new file,
///     never a torn mix.
///  2. A versioned, checksummed section format:
///
///        PRESTROID_ARTIFACT v2 <n_sections>\n
///        section <name> <byte_len> <crc32_hex>\n
///        <byte_len raw payload bytes>\n          (repeated per section)
///        end\n
///
///     Every section carries a CRC32 (IEEE 802.3 polynomial) over its
///     payload, so any truncation or bit-flip is detected at load time and
///     reported as StatusCode::kDataCorruption — corrupted weights are
///     never silently deserialized.

/// CRC32 (reflected polynomial 0xEDB88320, zlib-compatible) of `data`.
/// Pass a previous result as `seed` to checksum incrementally.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);
uint32_t Crc32(const std::string& data);

/// Writes `payload` to `path` atomically: temp file + fsync + rename. On
/// any failure the destination is untouched (a previously published file
/// stays intact) and the temp file is removed. Instrumented with
/// FaultSite::kArtifactWrite / kArtifactSync / kArtifactRename.
Status AtomicWriteFile(const std::string& path, const std::string& payload);

/// Reads the whole file in binary mode. Interrupted syscalls (EINTR) are
/// retried with a bounded exponential backoff, like AtomicWriteFile.
Result<std::string> ReadFileToString(const std::string& path);

/// Full integrity check of a v2 artifact container on disk: reads the file
/// and CRC-validates every section without deserializing any payload.
/// kDataCorruption for truncation, bit flips, or a pre-container legacy file
/// (which carries no checksums and therefore cannot be validated); IoError
/// if the file is unreadable. Serving uses this to fail fast at startup
/// instead of discovering a torn model mid-request.
Status ValidateArtifactFile(const std::string& path);

/// One named payload inside an artifact file.
struct ArtifactSection {
  std::string name;
  std::string payload;
};

/// Serializes sections into the v2 container format (in memory).
std::string EncodeArtifact(const std::vector<ArtifactSection>& sections);

/// Parses and integrity-checks a v2 container. Returns kDataCorruption on
/// bad magic, unsupported version, truncation, malformed section headers,
/// or any CRC mismatch.
Result<std::vector<ArtifactSection>> DecodeArtifact(const std::string& bytes);

/// Convenience: EncodeArtifact + AtomicWriteFile.
Status WriteArtifactFile(const std::string& path,
                         const std::vector<ArtifactSection>& sections);

/// Convenience: ReadFileToString + DecodeArtifact. IoError if the file is
/// unreadable, kDataCorruption if its contents fail validation.
Result<std::vector<ArtifactSection>> ReadArtifactFile(const std::string& path);

/// Looks up a section by name; kDataCorruption if absent (a valid container
/// missing a required section means it was produced by incompatible code).
Result<const ArtifactSection*> FindSection(
    const std::vector<ArtifactSection>& sections, const std::string& name);

}  // namespace prestroid

#endif  // PRESTROID_UTIL_ARTIFACT_IO_H_
