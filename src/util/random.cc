#include "util/random.h"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>

#include "util/logging.h"

namespace prestroid {

namespace {

// SplitMix64, used only to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  PRESTROID_CHECK_GT(bound, 0u);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PRESTROID_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = UniformDouble();
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

double Rng::Pareto(double x_m, double alpha) {
  PRESTROID_CHECK_GT(alpha, 0.0);
  double u = 1.0 - UniformDouble();  // in (0, 1]
  return x_m / std::pow(u, 1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::Zipf(size_t n, double s) {
  PRESTROID_CHECK_GT(n, 0u);
  if (n == 1) return 0;
  // Rejection-inversion sampler (Hörmann & Derflinger) over ranks 1..n.
  const double kN = static_cast<double>(n);
  auto h_integral = [s](double x) {
    double log_x = std::log(x);
    if (std::abs(1.0 - s) < 1e-12) return log_x;
    return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h = [s](double x) { return std::pow(x, -s); };
  const double h_x1 = h_integral(1.5) - 1.0;
  const double h_n = h_integral(kN + 0.5);
  while (true) {
    double u = h_x1 + UniformDouble() * (h_n - h_x1);
    double x;
    if (std::abs(1.0 - s) < 1e-12) {
      x = std::exp(u);
    } else {
      x = std::pow(u * (1.0 - s) + 1.0, 1.0 / (1.0 - s));
    }
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > kN) k = kN;
    if (u >= h_integral(k + 0.5) - h(k) || u >= h_x1) {
      return static_cast<size_t>(k) - 1;
    }
  }
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  PRESTROID_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  PRESTROID_CHECK_GT(total, 0.0);
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

void Rng::SerializeState(std::ostream& os) const {
  // The Gaussian cache is a double; round-trip its exact bit pattern.
  uint64_t cached_bits = 0;
  std::memcpy(&cached_bits, &cached_gaussian_, sizeof(cached_bits));
  os << "rng " << state_[0] << " " << state_[1] << " " << state_[2] << " "
     << state_[3] << " " << (has_cached_gaussian_ ? 1 : 0) << " "
     << cached_bits << "\n";
}

Status Rng::DeserializeState(std::istream& is) {
  std::string tag;
  uint64_t words[4] = {0, 0, 0, 0};
  int has_cached = 0;
  uint64_t cached_bits = 0;
  is >> tag >> words[0] >> words[1] >> words[2] >> words[3] >> has_cached >>
      cached_bits;
  if (is.fail() || tag != "rng") {
    return Status::ParseError("bad rng state record");
  }
  for (int i = 0; i < 4; ++i) state_[i] = words[i];
  has_cached_gaussian_ = has_cached != 0;
  std::memcpy(&cached_gaussian_, &cached_bits, sizeof(cached_gaussian_));
  return Status::OK();
}

}  // namespace prestroid
