#ifndef PRESTROID_UTIL_STATUS_H_
#define PRESTROID_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace prestroid {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of a small closed set of codes plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kUnimplemented,
  kInternal,
  kIoError,
  /// A stored artifact failed integrity validation (bad magic, version
  /// mismatch, CRC failure, truncation). Distinct from kIoError so callers
  /// can tell "the disk said no" apart from "the bytes are wrong".
  kDataCorruption,
  /// A bounded resource (admission queue, pool, quota) is full. Callers are
  /// expected to shed load or retry later; the request was never started.
  kResourceExhausted,
  /// The operation requires state the caller has not established (e.g. a
  /// blocking estimate against a runtime whose worker was never Start()ed).
  /// Distinct from kInvalidArgument: the arguments are fine, the object is
  /// not ready; fix the call ordering and retry.
  kFailedPrecondition,
  /// A transient endpoint failure: the peer went away (ECONNRESET/EPIPE),
  /// the service is draining, or the operation would have to wait
  /// (EAGAIN/EWOULDBLOCK on a non-blocking socket). Retrying against the
  /// same or another instance may succeed — unlike kIoError, which reports
  /// a hard local I/O failure.
  kUnavailable,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Cheap, copyable success/error carrier. OK status stores no allocation.
///
/// Public APIs in this library return `Status` (or `Result<T>`) instead of
/// throwing; exceptions never cross the public API boundary.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers for each error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DataCorruption(std::string msg) {
    return Status(StatusCode::kDataCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// Builds a Status from the current C `errno`, formatted as
  /// "<context>: <strerror(errno_value)> [errno <n>]". Network errnos map to
  /// retryable categories — ECONNRESET/EPIPE/ECONNREFUSED -> kUnavailable,
  /// EAGAIN/EWOULDBLOCK -> kResourceExhausted, EADDRINUSE -> kAlreadyExists —
  /// and everything else stays kIoError.
  static Status FromErrno(const std::string& context, int errno_value);

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK.
  const std::string& message() const;

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK. Matches the RocksDB trick of making success allocation-free.
  std::unique_ptr<State> state_;
};

/// Either a value of type T or an error Status. Modeled on arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from value and from error Status, so `return value;` and
  /// `return Status::X(...)` both work inside functions returning Result<T>.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    // A Result must never hold an OK status without a value.
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(payload_);
  }

  /// Precondition: ok(). Aborts otherwise (see PRESTROID_CHECK semantics).
  T& value() & { return std::get<T>(payload_); }
  const T& value() const& { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, aborting the process with `msg` context on error.
  T ValueOrDie();

 private:
  std::variant<T, Status> payload_;
};

namespace internal {
[[noreturn]] void DieOnError(const Status& status);
}  // namespace internal

template <typename T>
T Result<T>::ValueOrDie() {
  if (!ok()) internal::DieOnError(status());
  return std::get<T>(std::move(payload_));
}

/// Propagates a non-OK Status to the caller.
#define PRESTROID_RETURN_NOT_OK(expr)                   \
  do {                                                  \
    ::prestroid::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                          \
  } while (false)

#define PRESTROID_CONCAT_IMPL(x, y) x##y
#define PRESTROID_CONCAT(x, y) PRESTROID_CONCAT_IMPL(x, y)

/// Evaluates a Result-returning expression, assigning the value on success and
/// propagating the Status on failure: PRESTROID_ASSIGN_OR_RETURN(auto v, F());
#define PRESTROID_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  auto PRESTROID_CONCAT(_result_, __LINE__) = (rexpr);                    \
  if (!PRESTROID_CONCAT(_result_, __LINE__).ok())                         \
    return PRESTROID_CONCAT(_result_, __LINE__).status();                 \
  lhs = std::move(PRESTROID_CONCAT(_result_, __LINE__)).value()

}  // namespace prestroid

#endif  // PRESTROID_UTIL_STATUS_H_
