#include "util/table_printer.h"

#include <algorithm>
#include <iomanip>

#include "util/logging.h"
#include "util/string_util.h"

namespace prestroid {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  PRESTROID_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(StrFormat("%.*f", precision, v));
  }
  AddRow(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  os << Join(headers_, ",") << "\n";
  for (const auto& row : rows_) os << Join(row, ",") << "\n";
}

}  // namespace prestroid
