#ifndef PRESTROID_UTIL_MEMORY_TRACKER_H_
#define PRESTROID_UTIL_MEMORY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace prestroid {

/// Snapshot of a MemoryTracker's counters at one instant.
struct MemoryTrackerStats {
  size_t in_use_bytes = 0;
  size_t peak_bytes = 0;
  size_t budget_bytes = 0;  // 0 = unlimited
  size_t denied = 0;        // TryCharge calls refused over budget
};

/// Lock-free byte accounting with an optional hard budget.
///
/// Chargers call TryCharge before allocating and Release after freeing; a
/// charge that would push in-use past the budget is refused and counted, so
/// the caller can shed that request instead of letting one heavy consumer
/// grow the process until the OOM killer picks a victim. A budget of 0 means
/// "account but never refuse" — the tracker is then pure observability.
///
/// Thread-safe: all members are atomics; TryCharge uses a CAS loop so two
/// racing charges can never jointly exceed the budget.
class MemoryTracker {
 public:
  explicit MemoryTracker(size_t budget_bytes = 0) : budget_(budget_bytes) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Attempts to account `bytes`; false (and a denied tick) when the budget
  /// would be exceeded. Zero-byte charges always succeed.
  bool TryCharge(size_t bytes) {
    if (bytes == 0) return true;
    size_t current = in_use_.load(std::memory_order_relaxed);
    for (;;) {
      const size_t next = current + bytes;
      if (budget_ != 0 && (next > budget_ || next < current)) {
        denied_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (in_use_.compare_exchange_weak(current, next,
                                        std::memory_order_relaxed)) {
        UpdatePeak(next);
        return true;
      }
    }
  }

  /// Unconditional accounting (internal allocations that already happened,
  /// e.g. arena block growth). Never refuses; may exceed the budget.
  void Charge(size_t bytes) {
    const size_t next =
        in_use_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    UpdatePeak(next);
  }

  /// Returns `bytes` previously charged. Releasing more than is in use
  /// clamps to zero (a double-release bug should not wrap the counter).
  void Release(size_t bytes) {
    size_t current = in_use_.load(std::memory_order_relaxed);
    for (;;) {
      const size_t next = current >= bytes ? current - bytes : 0;
      if (in_use_.compare_exchange_weak(current, next,
                                        std::memory_order_relaxed)) {
        return;
      }
    }
  }

  size_t in_use() const { return in_use_.load(std::memory_order_relaxed); }
  size_t peak() const { return peak_.load(std::memory_order_relaxed); }
  size_t denied() const { return denied_.load(std::memory_order_relaxed); }
  size_t budget() const { return budget_; }

  MemoryTrackerStats Snapshot() const {
    MemoryTrackerStats stats;
    stats.in_use_bytes = in_use();
    stats.peak_bytes = peak();
    stats.budget_bytes = budget_;
    stats.denied = denied();
    return stats;
  }

 private:
  void UpdatePeak(size_t next) {
    size_t peak = peak_.load(std::memory_order_relaxed);
    while (next > peak &&
           !peak_.compare_exchange_weak(peak, next,
                                        std::memory_order_relaxed)) {
    }
  }

  size_t budget_;
  std::atomic<size_t> in_use_{0};
  std::atomic<size_t> peak_{0};
  std::atomic<size_t> denied_{0};
};

/// Bump allocator for per-request serving scratch, charged against a
/// MemoryTracker.
///
/// Allocations bump a pointer inside geometrically growing blocks; Reset()
/// rewinds the bump pointer but RETAINS the blocks (and their tracker
/// charge), so a steady-state serving worker stops allocating after warmup
/// while the tracker still reports the arena's true footprint. The tracker
/// charge is released when the arena is destroyed (or Trim()med).
///
/// Not thread-safe: each serving worker owns one arena, mirroring the
/// one-histogram-per-worker sharding pattern.
class ScratchArena {
 public:
  /// `tracker` may be nullptr (untracked arena). Block growth uses
  /// MemoryTracker::Charge — the admission-time request charge is the
  /// enforcement point; the arena reports actual usage.
  explicit ScratchArena(MemoryTracker* tracker = nullptr,
                        size_t initial_block_bytes = 16 * 1024);
  ~ScratchArena();

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t));

  /// Typed array helper. The storage is raw — callers must only place
  /// trivially-destructible types (the serving staging arrays are).
  template <typename T>
  T* AllocateArray(size_t count) {
    return static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
  }

  /// Rewinds to empty, retaining block capacity (and the tracker charge).
  void Reset();

  /// Frees every block and releases the tracker charge.
  void Trim();

  /// Total block capacity currently charged to the tracker.
  size_t capacity_bytes() const { return capacity_bytes_; }
  /// Bytes handed out since the last Reset().
  size_t used_bytes() const { return used_bytes_; }
  /// High-water mark of used_bytes() across the arena's lifetime.
  size_t peak_used_bytes() const { return peak_used_bytes_; }

 private:
  struct Block {
    char* data;
    size_t size;
    size_t offset;
  };

  Block* GrowFor(size_t bytes);

  MemoryTracker* tracker_;
  size_t next_block_bytes_;
  std::vector<Block> blocks_;
  size_t active_block_ = 0;  // blocks_[active_block_..] have room
  size_t capacity_bytes_ = 0;
  size_t used_bytes_ = 0;
  size_t peak_used_bytes_ = 0;
};

}  // namespace prestroid

#endif  // PRESTROID_UTIL_MEMORY_TRACKER_H_
