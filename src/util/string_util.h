#ifndef PRESTROID_UTIL_STRING_UTIL_H_
#define PRESTROID_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace prestroid {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Splits on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// ASCII lower/upper-casing (locale independent).
std::string ToLower(std::string_view input);
std::string ToUpper(std::string_view input);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True if the two strings match ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strict base-10 integer parse: the whole of `text` (after optional
/// leading/trailing ASCII whitespace) must be one integer that fits int64_t.
/// Unlike bare strtoll this rejects empty input, trailing garbage ("12x"),
/// and overflow, writing the value to `*out` only on success.
bool ParseInt64(std::string_view text, int64_t* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace prestroid

#endif  // PRESTROID_UTIL_STRING_UTIL_H_
