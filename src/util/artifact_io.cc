#include "util/artifact_io.h"

#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <sstream>

#include "util/fault_injection.h"
#include "util/string_util.h"

namespace prestroid {

namespace {

constexpr char kMagic[] = "PRESTROID_ARTIFACT";
constexpr char kVersion[] = "v2";
// Chunked writes keep the short-write fault site meaningful and bound the
// largest single write(2) the kernel must accept.
constexpr size_t kWriteChunk = 1 << 20;

const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
      }
      table[i] = crc;
    }
    return true;
  }();
  (void)initialized;
  return table;
}

/// Bounded exponential backoff between interrupted-syscall (EINTR) retries.
/// A handful of immediate-ish retries with growing pauses rides out signal
/// storms; a syscall still interrupted after the budget is a real error, so
/// artifact I/O can never spin forever on a hostile signal source.
class EintrBackoff {
 public:
  /// Returns true (after sleeping) if another retry is allowed, false when
  /// the retry budget is exhausted.
  bool Next() {
    if (attempt_ >= kMaxRetries) return false;
    // 0us, 1us, 2us, 4us, ... capped at ~1ms: ~2ms worst-case total.
    if (attempt_ > 0) {
      long nanos = (1L << (attempt_ - 1)) * 1000L;
      if (nanos > 1000000L) nanos = 1000000L;
      struct timespec delay = {0, nanos};
      ::nanosleep(&delay, nullptr);
    }
    ++attempt_;
    return true;
  }

  int attempts() const { return attempt_; }

  static constexpr int kMaxRetries = 8;

 private:
  int attempt_ = 0;
};

/// True when the fault injector wants this syscall to report EINTR.
bool InjectedEintr() {
  return FaultInjector::Global().ShouldFail(FaultSite::kArtifactEintr);
}

/// open(2) with EINTR retry.
int OpenWithRetry(const char* path, int flags, mode_t mode) {
  EintrBackoff backoff;
  while (backoff.Next()) {
    if (InjectedEintr()) {
      errno = EINTR;
      continue;
    }
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
  errno = EINTR;
  return -1;
}

/// Removes the temp file and reports `status`; used on every failure path of
/// AtomicWriteFile so a failed save never leaves stray temp files around.
Status CleanupAndFail(const std::string& tmp_path, Status status) {
  ::unlink(tmp_path.c_str());
  return status;
}

/// Best-effort fsync of the directory containing `path`, so the rename that
/// published an artifact survives a power loss. Failure is ignored: the data
/// file itself is already durable and some filesystems reject dir fsync.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const uint32_t* table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

uint32_t Crc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

Status AtomicWriteFile(const std::string& path, const std::string& payload) {
  const std::string tmp_path =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  int fd = OpenWithRetry(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::FromErrno("open " + tmp_path, errno);

  FaultInjector& faults = FaultInjector::Global();
  size_t offset = 0;
  EintrBackoff backoff;
  while (offset < payload.size()) {
    const size_t chunk = std::min(payload.size() - offset, kWriteChunk);
    if (faults.ShouldFail(FaultSite::kArtifactWrite)) {
      if (faults.short_write_bytes() != static_cast<size_t>(-1)) {
        // Simulate a torn write that partially reached the disk before the
        // process died: leave the truncated temp file behind, exactly as a
        // real crash would. The destination is untouched either way.
        const size_t partial = std::min(chunk, faults.short_write_bytes());
        if (partial > 0) {
          [[maybe_unused]] ssize_t ignored =
              ::write(fd, payload.data() + offset, partial);
        }
        ::close(fd);
        return Status::IoError("injected short write: " + tmp_path);
      }
      ::close(fd);
      return CleanupAndFail(tmp_path,
                            Status::IoError("injected write failure: " + tmp_path));
    }
    ssize_t written = -1;
    if (InjectedEintr()) {
      errno = EINTR;
    } else {
      written = ::write(fd, payload.data() + offset, chunk);
    }
    if (written < 0) {
      if (errno == EINTR) {
        if (backoff.Next()) continue;
        ::close(fd);
        return CleanupAndFail(
            tmp_path,
            Status::IoError("write " + tmp_path + " interrupted " +
                            std::to_string(EintrBackoff::kMaxRetries) +
                            " times; giving up"));
      }
      const int saved_errno = errno;
      ::close(fd);
      return CleanupAndFail(tmp_path,
                            Status::FromErrno("write " + tmp_path, saved_errno));
    }
    offset += static_cast<size_t>(written);
  }

  if (faults.ShouldFail(FaultSite::kArtifactSync)) {
    ::close(fd);
    return CleanupAndFail(tmp_path,
                          Status::IoError("injected fsync failure: " + tmp_path));
  }
  if (::fsync(fd) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    return CleanupAndFail(tmp_path,
                          Status::FromErrno("fsync " + tmp_path, saved_errno));
  }
  if (::close(fd) != 0) {
    return CleanupAndFail(tmp_path,
                          Status::FromErrno("close " + tmp_path, errno));
  }

  if (faults.ShouldFail(FaultSite::kArtifactRename)) {
    return CleanupAndFail(tmp_path,
                          Status::IoError("injected rename failure: " + path));
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return CleanupAndFail(
        tmp_path, Status::FromErrno("rename " + tmp_path + " -> " + path, errno));
  }
  SyncParentDir(path);
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  int fd = OpenWithRetry(path.c_str(), O_RDONLY, 0);
  if (fd < 0) return Status::IoError("cannot open for read: " + path);
  std::string out;
  char buffer[1 << 16];
  EintrBackoff backoff;
  for (;;) {
    ssize_t n = -1;
    if (InjectedEintr()) {
      errno = EINTR;
    } else {
      n = ::read(fd, buffer, sizeof(buffer));
    }
    if (n < 0) {
      if (errno == EINTR) {
        if (backoff.Next()) continue;
        ::close(fd);
        return Status::IoError("read " + path + " interrupted " +
                               std::to_string(EintrBackoff::kMaxRetries) +
                               " times; giving up");
      }
      const int saved_errno = errno;
      ::close(fd);
      return Status::FromErrno("read " + path, saved_errno);
    }
    if (n == 0) break;
    out.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status ValidateArtifactFile(const std::string& path) {
  PRESTROID_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  PRESTROID_ASSIGN_OR_RETURN(std::vector<ArtifactSection> sections,
                             DecodeArtifact(bytes));
  (void)sections;
  return Status::OK();
}

std::string EncodeArtifact(const std::vector<ArtifactSection>& sections) {
  std::ostringstream os;
  os << kMagic << " " << kVersion << " " << sections.size() << "\n";
  for (const ArtifactSection& section : sections) {
    char crc_hex[16];
    std::snprintf(crc_hex, sizeof(crc_hex), "%08x", Crc32(section.payload));
    os << "section " << section.name << " " << section.payload.size() << " "
       << crc_hex << "\n";
    os << section.payload << "\n";
  }
  os << "end\n";
  return os.str();
}

Result<std::vector<ArtifactSection>> DecodeArtifact(const std::string& bytes) {
  size_t pos = 0;
  // Pulls the next '\n'-terminated line; empty optional-style failure is
  // reported as corruption (header lines never legitimately run out).
  auto next_line = [&bytes, &pos](std::string* line) -> bool {
    const size_t end = bytes.find('\n', pos);
    if (end == std::string::npos) return false;
    line->assign(bytes, pos, end - pos);
    pos = end + 1;
    return true;
  };

  std::string line;
  if (!next_line(&line)) {
    return Status::DataCorruption("artifact truncated before header");
  }
  std::istringstream header(line);
  std::string magic, version, count_text;
  header >> magic >> version >> count_text;
  if (header.fail() || magic != kMagic) {
    return Status::DataCorruption("not a Prestroid artifact (bad magic)");
  }
  if (version != kVersion) {
    return Status::DataCorruption("unsupported artifact version: " + version);
  }
  // Checked parse: istringstream >> size_t silently wraps negative input
  // into a near-SIZE_MAX count, which the reserve below would then try to
  // honour. A count can also never exceed the byte length of the file.
  int64_t num_sections = 0;
  if (!ParseInt64(count_text, &num_sections) || num_sections < 0 ||
      static_cast<uint64_t>(num_sections) > bytes.size()) {
    return Status::DataCorruption("implausible section count: " + count_text);
  }

  std::vector<ArtifactSection> sections;
  sections.reserve(static_cast<size_t>(num_sections));
  for (int64_t i = 0; i < num_sections; ++i) {
    if (!next_line(&line)) {
      return Status::DataCorruption("artifact truncated in section table");
    }
    std::istringstream section_header(line);
    std::string tag, name, length_text, crc_hex;
    section_header >> tag >> name >> length_text >> crc_hex;
    if (section_header.fail() || tag != "section" || crc_hex.size() != 8) {
      return Status::DataCorruption("malformed section header: " + line);
    }
    int64_t length_value = 0;
    if (!ParseInt64(length_text, &length_value) || length_value < 0) {
      return Status::DataCorruption("implausible section length: " + line);
    }
    const size_t length = static_cast<size_t>(length_value);
    // strtoul would silently stop at the first bad character (and accepts
    // uppercase aliases of the lowercase digits the writer emits), so a
    // flipped checksum byte could still "match" — require strict lowercase
    // hex.
    for (char c : crc_hex) {
      if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) {
        return Status::DataCorruption("malformed section checksum: " + line);
      }
    }
    // Subtraction form: `pos + length + 1` would wrap for a length near
    // SIZE_MAX and sail past the bound. `pos <= bytes.size()` always holds,
    // and the section needs `length` payload bytes plus its terminator.
    const size_t available = bytes.size() - pos;
    if (length > available || available - length < 1) {
      return Status::DataCorruption("artifact truncated inside section " + name);
    }
    ArtifactSection section;
    section.name = name;
    section.payload.assign(bytes, pos, length);
    pos += length;
    if (bytes[pos] != '\n') {
      return Status::DataCorruption("missing section terminator: " + name);
    }
    ++pos;
    const uint32_t expected =
        static_cast<uint32_t>(std::strtoul(crc_hex.c_str(), nullptr, 16));
    const uint32_t actual = Crc32(section.payload);
    if (actual != expected) {
      return Status::DataCorruption("CRC mismatch in section " + name);
    }
    sections.push_back(std::move(section));
  }
  if (!next_line(&line) || line != "end") {
    return Status::DataCorruption("artifact missing end marker");
  }
  if (pos != bytes.size()) {
    return Status::DataCorruption("trailing bytes after artifact end marker");
  }
  return sections;
}

Status WriteArtifactFile(const std::string& path,
                         const std::vector<ArtifactSection>& sections) {
  return AtomicWriteFile(path, EncodeArtifact(sections));
}

Result<std::vector<ArtifactSection>> ReadArtifactFile(const std::string& path) {
  PRESTROID_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  return DecodeArtifact(bytes);
}

Result<const ArtifactSection*> FindSection(
    const std::vector<ArtifactSection>& sections, const std::string& name) {
  for (const ArtifactSection& section : sections) {
    if (section.name == name) return &section;
  }
  return Status::DataCorruption("artifact missing required section: " + name);
}

}  // namespace prestroid
