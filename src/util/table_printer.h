#ifndef PRESTROID_UTIL_TABLE_PRINTER_H_
#define PRESTROID_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace prestroid {

/// Renders aligned ASCII tables — used by the benchmark harnesses to print the
/// same rows/series the paper's tables and figures report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each double with `precision` decimal places.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Writes the padded table to `os`.
  void Print(std::ostream& os) const;

  /// Writes comma-separated values (for downstream plotting).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace prestroid

#endif  // PRESTROID_UTIL_TABLE_PRINTER_H_
