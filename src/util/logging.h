#ifndef PRESTROID_UTIL_LOGGING_H_
#define PRESTROID_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace prestroid {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that reaches stderr (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink flushed (and, for CHECK failures, aborted) on
/// destruction. Use through the PRESTROID_LOG / PRESTROID_CHECK macros.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PRESTROID_LOG(level)                                              \
  ::prestroid::internal::LogMessage(::prestroid::LogLevel::k##level,      \
                                    __FILE__, __LINE__)

/// Internal-invariant check: aborts with a message when `cond` is false.
/// Use for programmer errors only; recoverable conditions return Status.
#define PRESTROID_CHECK(cond)                                             \
  if (!(cond))                                                            \
  ::prestroid::internal::LogMessage(::prestroid::LogLevel::kError,        \
                                    __FILE__, __LINE__, /*fatal=*/true)   \
      << "Check failed: " #cond " "

#define PRESTROID_CHECK_EQ(a, b) PRESTROID_CHECK((a) == (b))
#define PRESTROID_CHECK_NE(a, b) PRESTROID_CHECK((a) != (b))
#define PRESTROID_CHECK_LT(a, b) PRESTROID_CHECK((a) < (b))
#define PRESTROID_CHECK_LE(a, b) PRESTROID_CHECK((a) <= (b))
#define PRESTROID_CHECK_GT(a, b) PRESTROID_CHECK((a) > (b))
#define PRESTROID_CHECK_GE(a, b) PRESTROID_CHECK((a) >= (b))

}  // namespace prestroid

#endif  // PRESTROID_UTIL_LOGGING_H_
